//! Per-query resource governor and deterministic fault injection.
//!
//! The paper is explicit that unbounded path enumeration is combinatorially
//! explosive (EDBT 2018 §6.1 motivates length inference with exactly that
//! risk). The row budget bounds *result* volume, but a hostile query can
//! still pin a worker for arbitrary wall time (filters rejecting every path
//! keep the traversal running without producing rows) or exhaust memory in
//! materializing operators. The [`ExecContext`] created per query carries
//! the three guards that close those holes:
//!
//! * a **wall-clock deadline** (`EngineConfig.governor.deadline_ms`,
//!   `GRFUSION_DEADLINE_MS`, harness `--deadline-ms`);
//! * a **cooperative cancellation token** ([`CancelToken`]) an external
//!   thread can trip mid-query;
//! * a **memory accountant** charging estimated bytes for path
//!   materialization, aggregation hash tables, sort buffers, and join
//!   builds against `max_memory_bytes`.
//!
//! Cancellation is *cooperative*, not preemptive: operators and traversal
//! filters poll [`ExecContext::check_now`] at periodic checkpoints (every
//! [`OP_CHECK_INTERVAL`] `next()` calls in volcano operators, every
//! [`EXPANSION_CHECK_INTERVAL`] vertex/edge expansions inside traversal
//! loops, and at every morsel boundary in the parallel pool). Preempting a
//! thread mid-mutation could leave shared state half-written; polling at
//! safe points guarantees the abort path is an ordinary `Err` that unwinds
//! through the same all-or-nothing rollback machinery as any other error —
//! storage, indexes, and every `GraphTopology` stay untouched, and all
//! worker threads are joined before the error surfaces.
//!
//! The same module hosts the **deterministic fault-injection plan**
//! (`GRFUSION_FAULTS=<seed>:<spec>`): a list of rules, each matching a site
//! name by prefix and firing on an exact hit count, so tests can drive an
//! error (or simulated allocation failure / deadline expiry) into a chosen
//! operator `next()` call or DML maintenance step and prove the
//! crash-consistency invariants hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use grfusion_common::{Error, PathData, ResourceKind, Result, Value};

use crate::config::GovernorConfig;

/// Volcano operators poll the governor every this many `next()` calls
/// (plus once on exhaustion, so a truncated stream can never read as a
/// clean end-of-stream).
pub const OP_CHECK_INTERVAL: u64 = 64;

/// Traversal filters poll the governor every this many vertex/edge
/// expansions — the guard that catches a traversal spinning without
/// emitting rows.
pub const EXPANSION_CHECK_INTERVAL: u64 = 256;

/// External cancellation handle for in-flight queries. Cloneable; all
/// clones share one generation counter.
///
/// Cancellation is **edge-triggered**, not sticky: [`CancelToken::cancel`]
/// bumps a generation, and a query aborts iff a bump happened after its
/// own [`CancelWatch`] was armed. A database-level token (see
/// `Database::cancel_token`) arms each query's watch at query start, so
/// cancelling trips every query in flight *at that moment* — a fresh
/// query issued afterwards runs to completion with no `reset()` dance.
/// That is exactly the multiplexed-connection contract the network
/// front-end needs: one client's disconnect must never bleed into the
/// next pooled query. A *per-request* token (`RequestOptions::cancel`)
/// instead arms its watch at generation zero, so a cancel that lands
/// while the request is still queued is not lost.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicU64>);

impl CancelToken {
    /// Request cancellation of the queries currently watching this token.
    /// Cooperative: each aborts at its next checkpoint with
    /// `Error::ResourceExhausted { kind: Cancelled, .. }`.
    pub fn cancel(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether [`CancelToken::cancel`] has ever fired on this token.
    /// Meaningful for per-request tokens (which are born fresh); a
    /// database-level token accumulates generations across its lifetime.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire) > 0
    }

    /// A watch tripped only by cancels *after* this call — the
    /// database-level arming point (queries already running get
    /// cancelled; later queries don't inherit the cancel).
    pub(crate) fn watch_from_now(&self) -> CancelWatch {
        CancelWatch {
            gen: self.0.clone(),
            armed_below: self.0.load(Ordering::Acquire),
        }
    }

    /// A watch tripped by *any* cancel on this token, ever — the
    /// per-request arming point (a disconnect while the request sits in
    /// the server's queue must still abort it when it runs).
    pub(crate) fn watch_any(&self) -> CancelWatch {
        CancelWatch {
            gen: self.0.clone(),
            armed_below: 0,
        }
    }
}

/// One query's view of a [`CancelToken`]: fires when the token's
/// generation exceeds the value captured at arming time.
#[derive(Debug, Clone)]
pub struct CancelWatch {
    gen: Arc<AtomicU64>,
    armed_below: u64,
}

impl CancelWatch {
    #[inline]
    pub(crate) fn fired(&self) -> bool {
        self.gen.load(Ordering::Relaxed) > self.armed_below
    }
}

// ---------------------------------------------------------------------------
// Ambient request scope
// ---------------------------------------------------------------------------

/// Per-request execution options a front-end attaches to a statement:
/// a wall-clock deadline (combined with — never exceeding — the engine's
/// configured governor deadline) and a per-request cancel token (tripped
/// by client disconnect).
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Remaining wall-clock budget for this request, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cancel token dedicated to this request (armed from generation 0:
    /// a cancel that lands before execution starts still aborts it).
    pub cancel: Option<CancelToken>,
}

/// The active request scope, established by [`enter_request`]. The
/// deadline is stored as an absolute instant so nested statement work
/// (subquery folding re-enters the executor) consumes one shared budget
/// instead of restarting the clock.
#[derive(Debug, Clone)]
pub(crate) struct RequestScope {
    pub deadline: Option<Instant>,
    pub cancel: Option<CancelToken>,
}

thread_local! {
    /// Statement execution is synchronous on the calling thread (morsel
    /// workers receive `&ExecContext`, built before they spawn), so an
    /// ambient thread-local carries the request scope into every
    /// `ExecContext` construction — including subquery folds and the
    /// epoch read path — without threading a parameter through each
    /// planner/executor layer.
    static REQUEST: std::cell::RefCell<Option<RequestScope>> =
        const { std::cell::RefCell::new(None) };
}

/// Install `opts` as the calling thread's request scope until the guard
/// drops. Nested scopes stack (inner restores outer on drop).
pub fn enter_request(opts: &RequestOptions) -> RequestGuard {
    let scope = RequestScope {
        deadline: opts
            .deadline_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
        cancel: opts.cancel.clone(),
    };
    let prev = REQUEST.with(|r| r.borrow_mut().replace(scope));
    RequestGuard { prev }
}

/// RAII guard restoring the previous request scope.
pub struct RequestGuard {
    prev: Option<RequestScope>,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        REQUEST.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

fn current_request() -> Option<RequestScope> {
    REQUEST.with(|r| r.borrow().clone())
}

/// Per-query governor state, carried by `QueryEnv` into every operator and
/// (by reference) into every parallel worker. All shared fields are atomic,
/// so one context serves the serial executor and the morsel pool alike.
#[derive(Debug)]
pub struct ExecContext {
    started: Instant,
    deadline: Option<Instant>,
    deadline_ms: u64,
    cancel: Vec<CancelWatch>,
    mem_cap: Option<u64>,
    mem_used: AtomicU64,
    faults: Option<Arc<FaultState>>,
    /// Epoch snapshot pinned for the lifetime of this query, when it runs
    /// against published-epoch state instead of the live locked state. The
    /// pin is what keeps a superseded epoch alive until every in-flight
    /// reader (including morsel workers sharing this context) finishes —
    /// dropping the context, on success, error, cancellation, or deadline,
    /// releases it.
    pub(crate) epoch_pin: Option<Arc<crate::epoch::Epoch>>,
}

impl Default for ExecContext {
    /// An unlimited context (no deadline, no cap, no cancel token): the
    /// zero-enforcement configuration used by internal evaluation paths.
    fn default() -> Self {
        ExecContext::new(&GovernorConfig::default(), Vec::new(), None)
    }
}

impl ExecContext {
    pub fn new(
        cfg: &GovernorConfig,
        cancel: Vec<CancelWatch>,
        faults: Option<Arc<FaultState>>,
    ) -> Self {
        let started = Instant::now();
        ExecContext {
            started,
            deadline: cfg
                .deadline_ms
                .map(|ms| started + std::time::Duration::from_millis(ms)),
            deadline_ms: cfg.deadline_ms.unwrap_or(0),
            cancel,
            mem_cap: cfg.max_memory_bytes,
            mem_used: AtomicU64::new(0),
            faults,
            epoch_pin: None,
        }
    }

    /// The per-query constructor used by both execution paths (locked and
    /// epoch-pinned): combines the engine's configured governor with the
    /// database-level cancel token (armed from *now*, so a past cancel
    /// never bleeds into this query) and the calling thread's ambient
    /// request scope, if a front-end installed one — the request deadline
    /// tightens (never loosens) the configured one, and the per-request
    /// token is armed from generation zero.
    pub(crate) fn for_query(
        cfg: &GovernorConfig,
        db_cancel: Option<&CancelToken>,
        faults: Option<Arc<FaultState>>,
    ) -> Self {
        let mut watches = Vec::new();
        if let Some(t) = db_cancel {
            watches.push(t.watch_from_now());
        }
        let mut effective = *cfg;
        if let Some(scope) = current_request() {
            if let Some(t) = &scope.cancel {
                watches.push(t.watch_any());
            }
            if let Some(d) = scope.deadline {
                let now = Instant::now();
                let remaining_ms = d.saturating_duration_since(now).as_millis() as u64;
                effective.deadline_ms = Some(match effective.deadline_ms {
                    Some(cfg_ms) => cfg_ms.min(remaining_ms),
                    None => remaining_ms,
                });
            }
        }
        ExecContext::new(&effective, watches, faults)
    }

    /// Whether any guard is configured. When false the executor skips the
    /// governed-operator shim entirely, keeping the default path zero-cost.
    pub fn active(&self) -> bool {
        self.deadline.is_some() || !self.cancel.is_empty() || self.mem_cap.is_some()
    }

    /// Milliseconds since the query started.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Poll the cancellation token and the deadline. Deadline expiry is
    /// monotone and cancellation is sticky, so once this errs it errs on
    /// every later call — engine code can re-check at a coarser site to
    /// surface the same abort.
    pub fn check_now(&self) -> Result<()> {
        for watch in &self.cancel {
            if watch.fired() {
                return Err(Error::resource(
                    ResourceKind::Cancelled,
                    self.elapsed_ms(),
                    0,
                ));
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Error::resource(
                    ResourceKind::Deadline,
                    self.elapsed_ms(),
                    self.deadline_ms,
                ));
            }
        }
        Ok(())
    }

    /// Charge `n` bytes against the memory cap. Without a cap this is free
    /// (no shared-state traffic); with one, the accountant is a relaxed
    /// atomic so parallel workers charge the same pool. Accounting is
    /// charge-only (a high-water estimate of materialized bytes): the
    /// buffers being charged — path buffers, sort/aggregation/join builds —
    /// live until the query ends anyway.
    pub fn charge_bytes(&self, n: u64) -> Result<()> {
        let Some(cap) = self.mem_cap else {
            return Ok(());
        };
        let total = self.mem_used.fetch_add(n, Ordering::Relaxed) + n;
        if total > cap {
            return Err(Error::resource(ResourceKind::Bytes, total, cap));
        }
        Ok(())
    }

    /// Bytes charged so far (0 when no cap is configured).
    pub fn bytes_charged(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// The active fault plan, if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_deref()
    }
}

// ---------------------------------------------------------------------------
// Byte estimators
// ---------------------------------------------------------------------------

/// Estimated resident bytes of one materialized path: the struct itself
/// plus its id vectors and view-name string. Deterministic, so tests can
/// predict exactly what a scan charges.
pub fn path_bytes(p: &PathData) -> u64 {
    (std::mem::size_of::<PathData>()
        + p.graph_view.len()
        + p.vertexes.len() * std::mem::size_of::<i64>()
        + p.edges.len() * std::mem::size_of::<i64>()) as u64
}

/// Estimated resident bytes of one value (inline enum + owned heap).
pub fn value_bytes(v: &Value) -> u64 {
    let heap = match v {
        Value::Text(s) => s.len() as u64,
        Value::Path(p) => path_bytes(p),
        _ => 0,
    };
    std::mem::size_of::<Value>() as u64 + heap
}

/// Estimated resident bytes of one row.
pub fn row_bytes(row: &[Value]) -> u64 {
    row.iter().map(value_bytes).sum()
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// What an injected fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A plain execution error at the site.
    Error,
    /// An allocation failure (`ResourceExhausted { kind: Bytes, .. }`).
    Alloc,
    /// Deadline expiry (`ResourceExhausted { kind: Deadline, .. }`).
    Deadline,
}

/// One injection rule: fire `kind` on the `nth` hit of any site whose name
/// starts with `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    pub site: String,
    pub nth: u64,
    pub kind: FaultKind,
}

/// A parsed `GRFUSION_FAULTS` plan. Syntax:
/// `<seed>:<site>[@<n>]=<error|alloc|deadline>[,...]` — e.g.
/// `7:dml.update.relink=error,PathScan@3=alloc`. A rule without `@<n>`
/// fires on a seed-derived hit count (deterministic per `(seed, site)`),
/// which is what the fault-sweep battery iterates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// One rule firing on the exact `nth` hit of `site` (test convenience).
    pub fn single(site: &str, nth: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                site: site.to_string(),
                nth,
                kind,
            }],
        }
    }

    /// Parse the `GRFUSION_FAULTS` syntax.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let bad = |why: &str| Error::analysis(format!("invalid GRFUSION_FAULTS `{spec}`: {why}"));
        let (seed_s, rules_s) = spec
            .split_once(':')
            .ok_or_else(|| bad("expected `<seed>:<rules>`"))?;
        let seed: u64 = seed_s
            .trim()
            .parse()
            .map_err(|_| bad("seed is not an integer"))?;
        let mut rules = Vec::new();
        for part in rules_s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site_part, kind_s) = part
                .split_once('=')
                .ok_or_else(|| bad("rule needs `site=kind`"))?;
            let kind = match kind_s.trim().to_ascii_lowercase().as_str() {
                "error" => FaultKind::Error,
                "alloc" => FaultKind::Alloc,
                "deadline" => FaultKind::Deadline,
                _ => return Err(bad("kind must be error|alloc|deadline")),
            };
            let (site, nth) = match site_part.split_once('@') {
                Some((s, n)) => (
                    s.trim().to_string(),
                    n.trim()
                        .parse::<u64>()
                        .map_err(|_| bad("`@n` is not an integer"))?
                        .max(1),
                ),
                None => {
                    let s = site_part.trim().to_string();
                    let n = seeded_nth(seed, &s);
                    (s, n)
                }
            };
            if site.is_empty() {
                return Err(bad("empty site pattern"));
            }
            rules.push(FaultRule { site, nth, kind });
        }
        if rules.is_empty() {
            return Err(bad("no rules"));
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Read `GRFUSION_FAULTS` from the environment. Returns `None` when
    /// unset; a malformed value is surfaced as an error so a typo in a test
    /// harness does not silently disable the sweep.
    pub fn from_env() -> Result<Option<FaultPlan>> {
        match std::env::var("GRFUSION_FAULTS") {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v).map(Some),
            _ => Ok(None),
        }
    }
}

/// Seed-derived hit count for rules without an explicit `@n`: a small
/// deterministic function of `(seed, site)` in `1..=4` so sweeping seeds
/// moves the injection point around without any test-side bookkeeping.
fn seeded_nth(seed: u64, site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // xorshift finisher so nearby seeds decorrelate.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    1 + (h % 4)
}

/// Runtime state of a fault plan: the rules plus one atomic hit counter
/// per rule, shared across statements so "retry after the fault" naturally
/// succeeds (the rule has already fired).
#[derive(Debug)]
pub struct FaultState {
    rules: Vec<(FaultRule, AtomicU64)>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            rules: plan
                .rules
                .into_iter()
                .map(|r| (r, AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Record one hit of `site` against every matching rule; returns the
    /// injected error when a rule's hit count lands exactly on its `nth`.
    pub fn hit(&self, site: &str) -> Result<()> {
        for (rule, count) in &self.rules {
            if !site.starts_with(rule.site.as_str()) {
                continue;
            }
            let n = count.fetch_add(1, Ordering::Relaxed) + 1;
            if n == rule.nth {
                return Err(match rule.kind {
                    FaultKind::Error => Error::execution(format!(
                        "injected fault at `{site}` (hit {n})"
                    )),
                    FaultKind::Alloc => Error::resource(ResourceKind::Bytes, n, 0),
                    FaultKind::Deadline => Error::resource(ResourceKind::Deadline, n, 0),
                });
            }
        }
        Ok(())
    }

    /// Reset all hit counters (re-arm the plan).
    pub fn reset(&self) {
        for (_, count) in &self.rules {
            count.store(0, Ordering::Relaxed);
        }
    }
}

/// Every DML fault-injection site, in statement-execution order. The
/// robustness battery iterates this list; keep it in sync with the
/// `fault(..)` calls in `dml.rs`.
pub const DML_FAULT_SITES: &[&str] = &[
    "dml.insert.row",
    "dml.insert.maintain",
    "dml.insert.post",
    "dml.delete.maintain",
    "dml.delete.storage",
    "dml.delete.post",
    "dml.update.maintain",
    "dml.update.relink",
    "dml.update.cascade",
    "dml.update.storage",
    "dml.update.post",
    "dml.seal",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_errors() -> Result<()> {
        let p = FaultPlan::parse("7:dml.update.relink=error,PathScan@3=alloc")?;
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].site, "dml.update.relink");
        assert_eq!(p.rules[0].kind, FaultKind::Error);
        assert_eq!(p.rules[1].nth, 3);
        assert_eq!(p.rules[1].kind, FaultKind::Alloc);
        // Seed-derived nth is deterministic and in range.
        let a = FaultPlan::parse("9:x=deadline")?;
        let b = FaultPlan::parse("9:x=deadline")?;
        assert_eq!(a.rules[0].nth, b.rules[0].nth);
        assert!((1..=4).contains(&a.rules[0].nth));
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("1:").is_err());
        assert!(FaultPlan::parse("1:a=b").is_err());
        assert!(FaultPlan::parse("1:@2=error").is_err());
        Ok(())
    }

    #[test]
    fn fault_state_fires_exactly_once() {
        let st = FaultState::new(FaultPlan::single("site.a", 2, FaultKind::Error));
        assert!(st.hit("site.a").is_ok());
        assert!(st.hit("site.b").is_ok()); // no prefix match
        assert!(st.hit("site.a.sub").is_err()); // 2nd matching hit fires
        assert!(st.hit("site.a").is_ok()); // spent
        st.reset();
        assert!(st.hit("site.a").is_ok());
        assert!(st.hit("site.a").is_err());
    }

    #[test]
    fn context_guards() {
        let ctx = ExecContext::default();
        assert!(!ctx.active());
        assert!(ctx.check_now().is_ok());
        assert!(ctx.charge_bytes(u64::MAX / 2).is_ok()); // uncapped: free

        let cfg = GovernorConfig {
            deadline_ms: None,
            max_memory_bytes: Some(100),
        };
        let ctx = ExecContext::new(&cfg, Vec::new(), None);
        assert!(ctx.active());
        assert!(ctx.charge_bytes(60).is_ok());
        let err = ctx.charge_bytes(60);
        assert!(
            matches!(
                err,
                Err(Error::ResourceExhausted {
                    kind: ResourceKind::Bytes,
                    spent: 120,
                    limit: 100,
                })
            ),
            "{err:?}"
        );

        let token = CancelToken::default();
        let ctx = ExecContext::new(
            &GovernorConfig::default(),
            vec![token.watch_from_now()],
            None,
        );
        assert!(ctx.active());
        assert!(ctx.check_now().is_ok());
        token.cancel();
        assert!(matches!(
            ctx.check_now(),
            Err(Error::ResourceExhausted {
                kind: ResourceKind::Cancelled,
                ..
            })
        ));

        let cfg = GovernorConfig {
            deadline_ms: Some(0),
            max_memory_bytes: None,
        };
        let ctx = ExecContext::new(&cfg, Vec::new(), None);
        assert!(matches!(
            ctx.check_now(),
            Err(Error::ResourceExhausted {
                kind: ResourceKind::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn cancel_does_not_bleed_into_later_queries() {
        // Database-level arming (`watch_from_now`): a cancel trips only
        // contexts armed before it; a context armed after runs clean.
        let token = CancelToken::default();
        let in_flight = ExecContext::new(
            &GovernorConfig::default(),
            vec![token.watch_from_now()],
            None,
        );
        token.cancel();
        assert!(in_flight.check_now().is_err());
        let next = ExecContext::new(
            &GovernorConfig::default(),
            vec![token.watch_from_now()],
            None,
        );
        assert!(next.check_now().is_ok(), "cancel bled into a later query");

        // Per-request arming (`watch_any`): a cancel that happened while
        // the request sat in a queue still aborts it once it runs.
        let req = CancelToken::default();
        req.cancel();
        assert!(req.is_cancelled());
        let queued = ExecContext::new(&GovernorConfig::default(), vec![req.watch_any()], None);
        assert!(queued.check_now().is_err(), "queued-cancel was lost");
    }

    #[test]
    fn request_scope_tightens_deadline_and_arms_token() {
        let opts = RequestOptions {
            deadline_ms: Some(10_000),
            cancel: Some(CancelToken::default()),
        };
        {
            let _g = enter_request(&opts);
            // Configured deadline is tighter: it wins.
            let cfg = GovernorConfig {
                deadline_ms: Some(5),
                max_memory_bytes: None,
            };
            let ctx = ExecContext::for_query(&cfg, None, None);
            assert!(ctx.active());
            assert!(ctx.deadline_ms <= 5);
            // No configured deadline: the request's budget applies.
            let ctx = ExecContext::for_query(&GovernorConfig::default(), None, None);
            assert!(ctx.deadline.is_some());
            assert!(ctx.check_now().is_ok());
            opts.cancel.as_ref().unwrap().cancel();
            assert!(ctx.check_now().is_err(), "request token not armed");
        }
        // Scope dropped: contexts stop seeing the request.
        let ctx = ExecContext::for_query(&GovernorConfig::default(), None, None);
        assert!(!ctx.active());
    }

    #[test]
    fn byte_estimators_are_deterministic() {
        let p = PathData {
            graph_view: "g".into(),
            vertexes: vec![1, 2, 3],
            edges: vec![10, 11],
            cost: 0.0,
        };
        let expect = (std::mem::size_of::<PathData>() + 1 + 3 * 8 + 2 * 8) as u64;
        assert_eq!(path_bytes(&p), expect);
        assert_eq!(
            value_bytes(&Value::Path(std::sync::Arc::new(p))),
            std::mem::size_of::<Value>() as u64 + expect
        );
        assert_eq!(
            row_bytes(&[Value::Integer(1), Value::text("ab")]),
            2 * std::mem::size_of::<Value>() as u64 + 2
        );
    }
}
