//! Statistics-driven cost-based plan selection (`GRFUSION_OPTIMIZER=1`).
//!
//! The rule-based planner fixes several physical choices that the paper's
//! converged relational-graph setting really wants costed: traversal mode
//! (BFS/DFS/targeted-BFS), traversal-vs-iterated-join for fixed-length path
//! predicates (the SQLGraph-style rewrite our own Figure-7 experiment shows
//! crossing over with branching factor), predicate pushdown, buffered-side
//! choice for nested-loop joins, and the row-vs-batch pipeline. This module
//! re-costs the rule-based QEP against those enumerable alternatives using
//! seal-time graph statistics ([`grfusion_graph::SealStats`]) and table row
//! counts / NDV estimates, picking the cheapest plan that is **provably
//! byte-identical** to the reference plan:
//!
//! * every rewrite is gated on a context where result bytes cannot change
//!   (an order-insensitive aggregate above, or a residual filter the
//!   planner is documented to keep), and
//! * the differential oracle's optimizer lane replays 200 seeded workloads
//!   against the rule-based engine to enforce the contract empirically.
//!
//! With the flag off (the default) this module is never called and the
//! rule-based path stays byte-identical to the pre-optimizer engine.

use std::collections::HashMap;
use std::sync::Arc;

use grfusion_common::{DataType, Result, Schema, Value};
use grfusion_graph::GraphStats;
use grfusion_storage::TableStats;

use crate::expr::{AggFunc, CmpOp, GraphMeta, PathProp, PhysExpr};
use crate::plan::{AggSpec, PathScanConfig, PlanNode, ScanMode, StartSource};

// ---- cost model constants --------------------------------------------------
//
// Unit: one sequential row visit costs 1.0. The constants below place the
// traversal-vs-iterated-join crossover near effective fan-out ~6, matching
// the measured Figure-7 crossover between branching factors 2 and 8.

/// Per-path bookkeeping a traversal pays regardless of fan-out (path vector
/// clone, simple-path membership check).
const TRAVERSAL_PATH_BASE: f64 = 1.0;
/// Traversal cost that grows with fan-out (frontier pressure, per-hop
/// overlay dispatch).
const TRAVERSAL_FANOUT_FACTOR: f64 = 0.5;
/// Cost of emitting one joined row through an index nested-loop probe.
const JOIN_ROW_COST: f64 = 4.0;
/// Flat cost per index probe stage.
const JOIN_PROBE_COST: f64 = 8.0;
/// Default filter selectivity when no statistic applies.
const FILTER_SELECTIVITY: f64 = 1.0 / 3.0;
/// Below this many estimated paths, per-hop predicate pushdown costs more
/// than the residual check it saves.
const PUSHDOWN_MIN_PATHS: f64 = 8.0;
/// Swap NLJ build sides only when the saving is clear (hysteresis keeps
/// borderline plans on the reference shape).
const NLJ_SWAP_RATIO: f64 = 1.5;
/// Below this many estimated result rows the batch pipeline's per-batch
/// overhead outweighs its amortization.
const BATCH_MIN_ROWS: f64 = 64.0;
/// Deepest iterated-join chain the rewrite enumerates (beyond this the
/// intermediate result estimate is too unreliable to bet on).
const MAX_JOIN_CHAIN: usize = 3;

// ---- catalog ---------------------------------------------------------------

/// Per-table statistics snapshot for the cost model.
#[derive(Debug, Clone, Default)]
pub struct TableCost {
    pub rows: f64,
    /// `(column, distinct keys)` for every indexed column.
    pub ndv: Vec<(usize, usize)>,
}

impl TableCost {
    fn ndv_of(&self, column: usize) -> Option<f64> {
        self.ndv
            .iter()
            .find(|&&(c, _)| c == column)
            .map(|&(_, n)| n as f64) // cast-ok: statistic, f64 precision ample
    }
}

/// Per-graph statistics snapshot for the cost model.
#[derive(Debug, Clone)]
pub struct GraphCost {
    pub vertices: f64,
    pub edges: f64,
    pub avg_out: f64,
    /// 90th-percentile out-degree from the seal-time histogram (falls back
    /// to `avg_out` when the graph was never sealed).
    pub p90_out: f64,
    pub max_out: f64,
    /// Whether the seal-time distribution still describes the live graph.
    pub fresh: bool,
}

impl GraphCost {
    /// Effective branching factor: when the seal-time distribution is
    /// fresh, the geometric mean of average and maximum out-degree — a
    /// skew-aware figure that exposes hub-dominated graphs (a star graph
    /// has avg≈1 but every traversal that matters leaves the hub). Stale
    /// or absent distributions fall back to the incrementally maintained
    /// average.
    pub fn effective_fan_out(&self) -> f64 {
        if self.fresh && self.max_out > 0.0 {
            (self.avg_out.max(1e-3) * self.max_out).sqrt()
        } else {
            self.avg_out
        }
    }
}

/// Statistics catalog the optimizer reads. Built by the engine layer from
/// live tables and topologies (or from a pinned epoch's snapshots) right
/// before planning.
#[derive(Debug, Clone, Default)]
pub struct CostCatalog {
    tables: HashMap<String, TableCost>,
    graphs: HashMap<String, GraphCost>,
}

impl CostCatalog {
    pub fn new() -> Self {
        CostCatalog::default()
    }

    pub fn add_table(&mut self, name: &str, stats: TableStats, ndv: Vec<(usize, usize)>) {
        self.tables.insert(
            name.to_ascii_lowercase(),
            TableCost {
                rows: stats.row_count as f64, // cast-ok: statistic, f64 precision ample
                ndv,
            },
        );
    }

    pub fn add_graph(&mut self, name: &str, stats: GraphStats) {
        let (p90, max, fresh) = match stats.seal {
            Some(s) => (
                s.degree_quantile(0.9) as f64, // cast-ok: statistic, f64 precision ample
                s.max_out_degree as f64,       // cast-ok: statistic, f64 precision ample
                stats.seal_fresh,
            ),
            None => (stats.avg_fan_out, stats.avg_fan_out, false),
        };
        self.graphs.insert(
            name.to_ascii_lowercase(),
            GraphCost {
                vertices: stats.vertex_count as f64, // cast-ok: statistic, f64 precision ample
                edges: stats.edge_count as f64,      // cast-ok: statistic, f64 precision ample
                avg_out: stats.avg_fan_out,
                p90_out: p90,
                max_out: max,
                fresh,
            },
        );
    }

    fn table(&self, name: &str) -> TableCost {
        self.tables.get(name).cloned().unwrap_or_default()
    }

    fn graph(&self, name: &str) -> GraphCost {
        self.graphs.get(name).cloned().unwrap_or(GraphCost {
            vertices: 0.0,
            edges: 0.0,
            avg_out: 1.0,
            p90_out: 1.0,
            max_out: 1.0,
            fresh: false,
        })
    }
}

// ---- estimation ------------------------------------------------------------

/// Cardinality/cost estimate for one plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEstimate {
    /// Estimated output rows (finite, non-negative).
    pub rows: f64,
    /// Cumulative cost of producing them (this node plus its subtree).
    pub cost: f64,
}

/// Estimate cardinalities bottom-up over the QEP, returned in **pre-order**
/// (the same order `PlanNode::explain` and `explain_typed` print nodes, so
/// estimates zip against EXPLAIN lines and `QueryMetrics` slots).
pub fn estimate(plan: &PlanNode, catalog: &CostCatalog) -> Vec<NodeEstimate> {
    let mut out = Vec::new();
    estimate_into(plan, catalog, &mut out);
    out
}

/// Recursive worker: reserves this node's pre-order slot, estimates the
/// children, then back-fills the slot from their results.
fn estimate_into(plan: &PlanNode, catalog: &CostCatalog, out: &mut Vec<NodeEstimate>) -> NodeEstimate {
    let slot = out.len();
    out.push(NodeEstimate { rows: 0.0, cost: 0.0 });
    let est = match plan {
        PlanNode::TableScan { table, filter, .. } => {
            let t = catalog.table(table);
            let sel = if filter.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate { rows: t.rows * sel, cost: t.rows }
        }
        PlanNode::IndexLookup { table, column, filter, .. } => {
            let t = catalog.table(table);
            let per_key = t.ndv_of(*column).map_or_else(
                || t.rows * FILTER_SELECTIVITY,
                |ndv| t.rows / ndv.max(1.0),
            );
            let sel = if filter.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate { rows: per_key * sel, cost: per_key + 1.0 }
        }
        PlanNode::VertexScan { graph, filter, .. } => {
            let g = catalog.graph(graph);
            let sel = if filter.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate { rows: g.vertices * sel, cost: g.vertices }
        }
        PlanNode::EdgeScan { graph, filter, .. } => {
            let g = catalog.graph(graph);
            let sel = if filter.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate { rows: g.edges * sel, cost: g.edges }
        }
        PlanNode::PathScan { config, .. } => path_scan_estimate(config, catalog, 1.0),
        PlanNode::PathJoin { outer, config, .. } => {
            let o = estimate_into(outer, catalog, out);
            let per_probe = path_scan_estimate(config, catalog, 1.0);
            NodeEstimate {
                rows: o.rows * per_probe.rows,
                cost: o.cost + o.rows.max(1.0) * per_probe.cost,
            }
        }
        PlanNode::Filter { input, .. } => {
            let i = estimate_into(input, catalog, out);
            NodeEstimate { rows: i.rows * FILTER_SELECTIVITY, cost: i.cost + i.rows }
        }
        PlanNode::NestedLoopJoin { left, right, condition, .. } => {
            let l = estimate_into(left, catalog, out);
            let r = estimate_into(right, catalog, out);
            let cross = l.rows * r.rows;
            let sel = if condition.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate { rows: cross * sel, cost: l.cost + r.cost + cross }
        }
        PlanNode::IndexJoin { outer, table, column, filter, .. } => {
            let o = estimate_into(outer, catalog, out);
            let t = catalog.table(table);
            let per_probe = t.ndv_of(*column).map_or_else(
                || t.rows * FILTER_SELECTIVITY,
                |ndv| t.rows / ndv.max(1.0),
            );
            let sel = if filter.is_some() { FILTER_SELECTIVITY } else { 1.0 };
            NodeEstimate {
                rows: o.rows * per_probe * sel,
                cost: o.cost + o.rows.max(1.0) * (per_probe * JOIN_ROW_COST + JOIN_PROBE_COST),
            }
        }
        PlanNode::Project { input, .. } => {
            let i = estimate_into(input, catalog, out);
            NodeEstimate { rows: i.rows, cost: i.cost + i.rows }
        }
        PlanNode::Aggregate { input, group_exprs, .. } => {
            let i = estimate_into(input, catalog, out);
            let rows = if group_exprs.is_empty() { 1.0 } else { i.rows.sqrt().max(1.0) };
            NodeEstimate { rows, cost: i.cost + i.rows }
        }
        PlanNode::Sort { input, .. } => {
            let i = estimate_into(input, catalog, out);
            let n = i.rows.max(1.0);
            NodeEstimate { rows: i.rows, cost: i.cost + n * n.log2().max(1.0) }
        }
        PlanNode::Limit { input, limit, .. } => {
            let i = estimate_into(input, catalog, out);
            NodeEstimate {
                rows: i.rows.min(*limit as f64), // cast-ok: statistic, f64 precision ample
                cost: i.cost,
            }
        }
        PlanNode::Distinct { input, .. } => {
            let i = estimate_into(input, catalog, out);
            NodeEstimate { rows: i.rows.sqrt().max(i.rows.min(1.0)), cost: i.cost + i.rows }
        }
    };
    // Clamp to the advertised contract: finite and non-negative, whatever
    // the statistics fed in.
    let est = NodeEstimate {
        rows: if est.rows.is_finite() { est.rows.max(0.0) } else { f64::MAX / 4.0 },
        cost: if est.cost.is_finite() { est.cost.max(0.0) } else { f64::MAX / 4.0 },
    };
    out[slot] = est;
    est
}

/// Expected paths (and enumeration cost) for one path-scan probe. The
/// branching factor comes from the seal-time distribution when fresh;
/// unanchored scans multiply by the vertex count.
fn path_scan_estimate(config: &PathScanConfig, catalog: &CostCatalog, _probes: f64) -> NodeEstimate {
    let g = catalog.graph(&config.graph);
    let f = g.effective_fan_out().max(1e-3);
    let seeds = match config.start {
        StartSource::AllVertexes => g.vertices.max(1.0),
        _ => 1.0,
    };
    // Paths of length d from one seed ~ f^d; enumeration visits every
    // prefix, so work ~ sum over 1..=max of f^d.
    let mut paths = 0.0f64;
    let mut work = 0.0f64;
    let mut level = 1.0f64;
    for d in 1..=config.max_len.min(32) {
        level = (level * f).min(1e12);
        work += level;
        if d >= config.min_len {
            paths += level;
        }
    }
    let mut rows = seeds * paths;
    let mut cost = seeds * work * (TRAVERSAL_PATH_BASE + TRAVERSAL_FANOUT_FACTOR * f);
    if config.reachability {
        // Visited-set BFS: at most one row, work bounded by the component.
        rows = rows.min(1.0);
        cost = cost.min(g.edges.max(1.0));
    }
    if config.end.is_some() {
        // A target anchor keeps only paths landing on one vertex.
        rows /= g.vertices.max(1.0);
    }
    if !config.edge_preds.is_empty() || !config.vertex_preds.is_empty() {
        rows *= FILTER_SELECTIVITY;
    }
    NodeEstimate { rows, cost }
}

// ---- optimization ----------------------------------------------------------

/// Result of cost-based re-planning.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: PlanNode,
    /// Pre-order per-node estimates for the **final** plan.
    pub estimates: Vec<NodeEstimate>,
    /// Whether the cost model prefers the row-at-a-time pipeline for this
    /// query even though batch execution is enabled.
    pub prefer_row_pipeline: bool,
    /// Human-readable decision log (one line per choice that deviated from
    /// the rule-based reference).
    pub decisions: Vec<String>,
    /// Whether any rewrite changed the plan tree.
    pub changed: bool,
}

/// Re-cost the rule-based plan and apply any cheaper byte-identical
/// alternative. On any structural change the rewritten plan is re-verified
/// with the analyzer's schema re-derivation before it is returned.
pub fn optimize(
    plan: PlanNode,
    catalog: &CostCatalog,
    graphs: &HashMap<String, GraphMeta>,
    tables: &HashMap<String, Arc<Schema>>,
    hash_indexed: &HashMap<String, Vec<usize>>,
) -> Result<Optimized> {
    let mut rw = Rewriter {
        catalog,
        graphs,
        hash_indexed,
        decisions: Vec::new(),
        changed: false,
    };
    let plan = rw.rewrite(plan, false);
    if rw.changed {
        crate::analyze::verify_plan(&plan, graphs, tables)?;
    }
    let estimates = estimate(&plan, catalog);
    let root_rows = estimates.first().map_or(0.0, |e| e.rows);
    let prefer_row_pipeline = root_rows < BATCH_MIN_ROWS;
    if prefer_row_pipeline {
        rw.decisions
            .push(format!("row pipeline (est {} result rows)", root_rows.round()));
    }
    Ok(Optimized {
        plan,
        estimates,
        prefer_row_pipeline,
        decisions: rw.decisions,
        changed: rw.changed,
    })
}

struct Rewriter<'a> {
    catalog: &'a CostCatalog,
    graphs: &'a HashMap<String, GraphMeta>,
    hash_indexed: &'a HashMap<String, Vec<usize>>,
    decisions: Vec<String>,
    changed: bool,
}

impl<'a> Rewriter<'a> {
    /// Walk the tree applying rewrites. `order_free` is true below an
    /// order-insensitive aggregate: every node there may emit rows in any
    /// order without changing result bytes.
    fn rewrite(&mut self, plan: PlanNode, order_free: bool) -> PlanNode {
        match plan {
            PlanNode::Aggregate { input, group_exprs, aggs, schema } => {
                let oi = group_exprs.is_empty() && aggs.iter().all(agg_order_insensitive);
                // The iterated-join rewrite consumes the whole
                // Aggregate(Filter(PathScan)) pattern at once.
                if oi {
                    if let Some(rewritten) =
                        self.try_iterated_join(&input, &group_exprs, &aggs, &schema)
                    {
                        return rewritten;
                    }
                }
                let input = Box::new(self.rewrite(*input, order_free || oi));
                PlanNode::Aggregate { input, group_exprs, aggs, schema }
            }
            PlanNode::PathScan { config, schema } => {
                let config = self.rewrite_path_config(config, order_free);
                PlanNode::PathScan { config, schema }
            }
            PlanNode::PathJoin { outer, config, schema } => {
                let outer = Box::new(self.rewrite(*outer, order_free));
                let config = self.rewrite_path_config(config, order_free);
                PlanNode::PathJoin { outer, config, schema }
            }
            PlanNode::NestedLoopJoin { left, right, condition, schema } => {
                let left = Box::new(self.rewrite(*left, order_free));
                let right = Box::new(self.rewrite(*right, order_free));
                if order_free {
                    self.maybe_swap_nlj(left, right, condition, schema)
                } else {
                    PlanNode::NestedLoopJoin { left, right, condition, schema }
                }
            }
            PlanNode::Filter { input, predicate, schema } => {
                let input = Box::new(self.rewrite(*input, order_free));
                PlanNode::Filter { input, predicate, schema }
            }
            PlanNode::Project { input, exprs, schema } => {
                let input = Box::new(self.rewrite(*input, order_free));
                PlanNode::Project { input, exprs, schema }
            }
            PlanNode::Sort { input, keys, schema } => {
                // A full sort above restores order anyway; everything below
                // is order-free except that Sort is not total on ties, so
                // stay conservative and keep the flag as-is.
                let input = Box::new(self.rewrite(*input, order_free));
                PlanNode::Sort { input, keys, schema }
            }
            PlanNode::Limit { input, limit, schema } => {
                let input = Box::new(self.rewrite(*input, order_free));
                PlanNode::Limit { input, limit, schema }
            }
            PlanNode::Distinct { input, schema } => {
                let input = Box::new(self.rewrite(*input, order_free));
                PlanNode::Distinct { input, schema }
            }
            PlanNode::IndexJoin { outer, table, column, key, filter, schema } => {
                let outer = Box::new(self.rewrite(*outer, order_free));
                PlanNode::IndexJoin { outer, table, column, key, filter, schema }
            }
            leaf @ (PlanNode::TableScan { .. }
            | PlanNode::IndexLookup { .. }
            | PlanNode::VertexScan { .. }
            | PlanNode::EdgeScan { .. }) => leaf,
        }
    }

    /// Traversal-mode and pushdown choices on one path-scan config.
    fn rewrite_path_config(&mut self, mut config: PathScanConfig, order_free: bool) -> PathScanConfig {
        let g = self.catalog.graph(&config.graph);
        let f = g.effective_fan_out();
        // Mode choice: only where emission order is free (BFS and DFS emit
        // the same path set in different orders).
        if order_free && config.mode == ScanMode::Auto && !config.reachability {
            if config.end.is_some() {
                // Selective target anchor: breadth-first reaches the anchor
                // level by level and the residual end-filter kills whole
                // levels at once.
                config.mode = ScanMode::Bfs;
                self.decisions
                    .push(format!("targeted-bfs on {} (end anchor)", config.graph));
                self.changed = true;
            } else {
                let max_len = config.max_len as f64; // cast-ok: statistic, f64 precision ample
                let mode = if f < max_len { ScanMode::Bfs } else { ScanMode::Dfs };
                self.decisions.push(format!(
                    "{:?} on {} (effective fan-out {:.1} vs len {})",
                    mode, config.graph, f, config.max_len
                ));
                config.mode = mode;
                self.changed = true;
            }
        }
        // Pushdown ablation: the planner keeps pushed predicates in the
        // residual filter, so dropping them never changes rows or order —
        // worth it only when so few paths survive that per-hop checks cost
        // more than the residual pass. Never on the reachability fast path,
        // whose first-hit semantics depend on pruned traversal.
        if !config.reachability
            && (!config.edge_preds.is_empty()
                || !config.vertex_preds.is_empty()
                || !config.agg_preds.is_empty())
        {
            let est = path_scan_estimate(&config, self.catalog, 1.0);
            if est.rows <= PUSHDOWN_MIN_PATHS {
                config.edge_preds.clear();
                config.vertex_preds.clear();
                config.agg_preds.clear();
                self.decisions.push(format!(
                    "pushdown ablated on {} (est {} paths)",
                    config.graph,
                    est.rows.round()
                ));
                self.changed = true;
            }
        }
        config
    }

    /// Buffered-side choice: NLJ buffers its LEFT input and re-streams the
    /// RIGHT per buffered row, so the smaller side should sit left. Output
    /// is left⊕right, so swapping needs a Project above to restore column
    /// order and an index remap inside the condition — both exact.
    fn maybe_swap_nlj(
        &mut self,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        condition: Option<PhysExpr>,
        schema: Arc<Schema>,
    ) -> PlanNode {
        let l = estimate(&left, self.catalog);
        let r = estimate(&right, self.catalog);
        let (lrows, rrows) = (l[0].rows, r[0].rows);
        if lrows <= rrows * NLJ_SWAP_RATIO {
            return PlanNode::NestedLoopJoin { left, right, condition, schema };
        }
        let lw = left.schema().len();
        let rw = right.schema().len();
        let remap = |idx: usize| if idx < lw { idx + rw } else { idx - lw };
        let condition = condition.map(|c| remap_columns(c, &remap));
        let swapped_schema = Arc::new(Schema::clone(right.schema()).join(left.schema()));
        let inner = PlanNode::NestedLoopJoin {
            left: right,
            right: left,
            condition,
            schema: swapped_schema,
        };
        // Restore the original left⊕right column layout.
        let exprs: Vec<PhysExpr> = (0..lw + rw)
            .map(|i| {
                let src = remap(i);
                PhysExpr::Column { index: src, ty: schema.column(i).data_type }
            })
            .collect();
        self.decisions.push(format!(
            "nlj build-side swap (left est {} rows vs right {})",
            lrows.round(),
            rrows.round()
        ));
        self.changed = true;
        PlanNode::Project { input: Box::new(inner), exprs, schema }
    }

    /// The SQLGraph-style rewrite: `COUNT(*)` over paths of one exact
    /// length from one constant anchor becomes a chain of index joins over
    /// the edge source plus a simple-path distinctness filter. Applies only
    /// when every byte-identity condition holds *and* the cost model says
    /// the join side wins (high effective fan-out).
    fn try_iterated_join(
        &mut self,
        input: &PlanNode,
        group_exprs: &[PhysExpr],
        aggs: &[AggSpec],
        agg_schema: &Arc<Schema>,
    ) -> Option<PlanNode> {
        if !group_exprs.is_empty() {
            return None;
        }
        // COUNT(*) only: the replacement subtree has edge-row schema, so no
        // aggregate argument may reference the path column.
        if !aggs.iter().all(|a| a.func == AggFunc::Count && a.arg.is_none()) {
            return None;
        }
        // Accept Aggregate(Filter(PathScan)) — the planner always leaves
        // the anchor/length conjuncts in a residual filter — and prove that
        // filter fully implied by the scan config before dropping it.
        let (config, residual) = match input {
            PlanNode::Filter { input, predicate, .. } => match &**input {
                PlanNode::PathScan { config, .. } => (config, Some(predicate)),
                _ => return None,
            },
            PlanNode::PathScan { config, .. } => (config, None),
            _ => return None,
        };
        let meta = self.graphs.get(&config.graph)?;
        if !meta.def.directed {
            return None; // join over (from, to) misses reverse hops
        }
        if config.reachability
            || config.end.is_some()
            || !config.edge_preds.is_empty()
            || !config.vertex_preds.is_empty()
            || !config.agg_preds.is_empty()
            || matches!(config.mode, ScanMode::ShortestPath { .. })
        {
            return None;
        }
        let k = config.min_len;
        if k != config.max_len || k == 0 || k > MAX_JOIN_CHAIN {
            return None;
        }
        let start = match &config.start {
            StartSource::Constant(PhysExpr::Literal(Value::Integer(s))) => *s,
            _ => return None,
        };
        // Every residual conjunct must be implied by the scan config.
        if let Some(pred) = residual {
            let mut conjuncts = Vec::new();
            flatten_and(pred, &mut conjuncts);
            for c in &conjuncts {
                if !conjunct_implied(c, start, k) {
                    return None;
                }
            }
        }
        // The chain needs a hash index on the edge-source from-column.
        let edge_table = &meta.def.edge_source;
        if !self
            .hash_indexed
            .get(edge_table)
            .is_some_and(|cols| cols.contains(&meta.def.edge_from_col))
        {
            return None;
        }
        // Cost the two sides; traversal keeps the plan unchanged.
        let g = self.catalog.graph(&config.graph);
        let f = g.effective_fan_out().max(1e-3);
        let paths: f64 = (1..=k).map(|d| f.powi(d as i32)).sum(); // cast-ok: k <= 3
        let work: f64 = paths; // same prefix set at exact depth k anchoring
        let traversal_cost = work * (TRAVERSAL_PATH_BASE + TRAVERSAL_FANOUT_FACTOR * f);
        let join_cost = paths * JOIN_ROW_COST + k as f64 * JOIN_PROBE_COST; // cast-ok: k <= 3
        if traversal_cost <= join_cost {
            return None;
        }

        let edge_schema = meta.edge_schema.clone();
        let width = edge_schema.len();
        let from_col = meta.def.edge_from_col;
        let to_col = meta.def.edge_to_col;
        let id_ty = edge_schema.column(to_col).data_type;
        // Hop 1: index lookup of edges leaving the anchor.
        let mut chain = PlanNode::IndexLookup {
            table: edge_table.clone(),
            schema: edge_schema.clone(),
            column: from_col,
            key: PhysExpr::Literal(Value::Integer(start)),
            filter: None,
        };
        let mut chain_schema = Schema::clone(&edge_schema);
        // Hops 2..=k: index join keyed on the previous hop's to-column.
        for hop in 2..=k {
            chain_schema = chain_schema.join(&edge_schema);
            chain = PlanNode::IndexJoin {
                outer: Box::new(chain),
                table: edge_table.clone(),
                column: from_col,
                key: PhysExpr::Column { index: (hop - 2) * width + to_col, ty: id_ty },
                filter: None,
                schema: Arc::new(chain_schema.clone()),
            };
        }
        let chain_schema = Arc::new(chain_schema);
        // Simple-path distinctness: targets pairwise distinct, and every
        // non-final target distinct from the start (the final target may
        // close a cycle back to the anchor).
        let target = |i: usize| PhysExpr::Column { index: (i - 1) * width + to_col, ty: id_ty };
        let mut pred: Option<PhysExpr> = None;
        let mut add = |p: PhysExpr| {
            pred = Some(match pred.take() {
                None => p,
                Some(q) => PhysExpr::And(Box::new(q), Box::new(p)),
            });
        };
        for i in 1..k {
            add(PhysExpr::Cmp {
                op: CmpOp::NotEq,
                left: Box::new(target(i)),
                right: Box::new(PhysExpr::Literal(Value::Integer(start))),
            });
        }
        for i in 1..=k {
            for j in (i + 1)..=k {
                add(PhysExpr::Cmp {
                    op: CmpOp::NotEq,
                    left: Box::new(target(i)),
                    right: Box::new(target(j)),
                });
            }
        }
        let joined = match pred {
            Some(predicate) => PlanNode::Filter {
                input: Box::new(chain),
                predicate,
                schema: chain_schema,
            },
            None => chain,
        };
        self.decisions.push(format!(
            "iterated join on {} (len {k}, effective fan-out {f:.1})",
            config.graph
        ));
        self.changed = true;
        Some(PlanNode::Aggregate {
            input: Box::new(joined),
            group_exprs: Vec::new(),
            aggs: aggs.to_vec(),
            schema: agg_schema.clone(),
        })
    }
}

/// Aggregates whose value is independent of input order. Double-typed SUM
/// and AVG accumulate in f64 and are excluded; integer SUM/AVG accumulate
/// exactly (i128) and qualify.
fn agg_order_insensitive(spec: &AggSpec) -> bool {
    match spec.func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
        AggFunc::Sum | AggFunc::Avg => spec
            .arg
            .as_ref()
            .is_some_and(|a| a.static_type() == DataType::Integer),
    }
}

fn flatten_and<'p>(pred: &'p PhysExpr, out: &mut Vec<&'p PhysExpr>) {
    match pred {
        PhysExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        p => out.push(p),
    }
}

/// Whether one residual conjunct is implied by a path scan anchored at
/// `start` with an exact length-`k` window (so dropping it cannot change
/// the result). Only the two conjunct shapes the planner emits for those
/// anchors are recognized; anything else keeps the rewrite off.
fn conjunct_implied(pred: &PhysExpr, start: i64, k: usize) -> bool {
    let PhysExpr::Cmp { op: CmpOp::Eq, left, right } = pred else {
        return false;
    };
    match (&**left, &**right) {
        (
            PhysExpr::PathProp { prop: PathProp::StartVertexId, .. },
            PhysExpr::Literal(Value::Integer(s)),
        ) => *s == start,
        (PhysExpr::PathProp { prop: PathProp::Length, .. }, PhysExpr::Literal(Value::Integer(l))) => {
            u64::try_from(*l).is_ok_and(|l| l == k as u64) // cast-ok: k <= 3
        }
        _ => false,
    }
}

/// Rewrite every column reference in a predicate through `remap` (used when
/// swapping NLJ sides: the condition was compiled against left⊕right and
/// must re-address right⊕left).
fn remap_columns(expr: PhysExpr, remap: &impl Fn(usize) -> usize) -> PhysExpr {
    let rec = |e: Box<PhysExpr>| Box::new(remap_columns(*e, remap));
    match expr {
        PhysExpr::Column { index, ty } => PhysExpr::Column { index: remap(index), ty },
        PhysExpr::PathProp { col, prop, ty } => PhysExpr::PathProp { col: remap(col), prop, ty },
        PhysExpr::PathAgg { col, target, attr, func, ty } => {
            PhysExpr::PathAgg { col: remap(col), target, attr, func, ty }
        }
        PhysExpr::Quant { col, target, start, end, attr, test } => {
            PhysExpr::Quant { col: remap(col), target, start, end, attr, test }
        }
        PhysExpr::Not(e) => PhysExpr::Not(rec(e)),
        PhysExpr::Neg(e) => PhysExpr::Neg(rec(e)),
        PhysExpr::And(l, r) => PhysExpr::And(rec(l), rec(r)),
        PhysExpr::Or(l, r) => PhysExpr::Or(rec(l), rec(r)),
        PhysExpr::Cmp { op, left, right } => PhysExpr::Cmp { op, left: rec(left), right: rec(right) },
        PhysExpr::Arith { op, left, right } => {
            PhysExpr::Arith { op, left: rec(left), right: rec(right) }
        }
        PhysExpr::InList { expr, list, negated } => PhysExpr::InList {
            expr: rec(expr),
            list: list.into_iter().map(|e| remap_columns(e, remap)).collect(),
            negated,
        },
        PhysExpr::Between { expr, low, high, negated } => PhysExpr::Between {
            expr: rec(expr),
            low: rec(low),
            high: rec(high),
            negated,
        },
        e @ (PhysExpr::Literal(_) | PhysExpr::Param { .. }) => e,
    }
}

// ---- EXPLAIN annotation ----------------------------------------------------

/// Append ` rows_est=N cost=C` to each EXPLAIN line. `lines` must be the
/// pre-order node rendering (`explain_typed` / `PlanNode::explain`); when
/// the line count does not match the estimate count the text is returned
/// unchanged — estimates are an annotation, never a formatting risk.
pub fn annotate_explain(text: &str, estimates: &[NodeEstimate]) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != estimates.len() {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len() + estimates.len() * 24);
    for (line, est) in lines.iter().zip(estimates) {
        out.push_str(line);
        out.push_str(&format!(" rows_est={} cost={}", fmt_est(est.rows), fmt_est(est.cost)));
        out.push('\n');
    }
    out
}

/// Render an estimate as a stable integer (no scientific notation, no `?`):
/// saturates at u64::MAX for overflow-level estimates.
fn fmt_est(v: f64) -> u64 {
    if !v.is_finite() || v >= u64::MAX as f64 { // cast-ok: saturation bound
        u64::MAX
    } else {
        v.round() as u64 // cast-ok: clamped non-negative finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::Column;

    fn catalog() -> CostCatalog {
        let mut c = CostCatalog::new();
        c.add_table(
            "e",
            TableStats { row_count: 1000, slot_count: 1000 },
            vec![(0, 1000), (1, 50)],
        );
        c
    }

    fn scan() -> PlanNode {
        PlanNode::TableScan {
            table: "e".into(),
            schema: Schema::new(vec![Column::new("id", DataType::Integer)]).shared(),
            filter: None,
        }
    }

    #[test]
    fn estimates_are_preorder_and_clamped() {
        let plan = PlanNode::Limit {
            schema: scan().schema().clone(),
            limit: 10,
            input: Box::new(PlanNode::Filter {
                schema: scan().schema().clone(),
                predicate: PhysExpr::Literal(Value::Boolean(true)),
                input: Box::new(scan()),
            }),
        };
        let ests = estimate(&plan, &catalog());
        assert_eq!(ests.len(), 3); // Limit, Filter, TableScan pre-order
        assert!((ests[2].rows - 1000.0).abs() < 1e-9);
        assert!(ests[1].rows < ests[2].rows);
        assert!(ests[0].rows <= 10.0);
        for e in &ests {
            assert!(e.rows.is_finite() && e.rows >= 0.0);
            assert!(e.cost.is_finite() && e.cost >= 0.0);
        }
    }

    #[test]
    fn limit_is_monotone() {
        for limit in [0u64, 1, 5, 100, 10_000] {
            let plan = PlanNode::Limit {
                schema: scan().schema().clone(),
                limit,
                input: Box::new(scan()),
            };
            let ests = estimate(&plan, &catalog());
            assert!(ests[0].rows <= ests[1].rows, "limit never raises cardinality");
            assert!(ests[0].rows <= limit as f64); // cast-ok: test bound
        }
    }

    #[test]
    fn annotate_requires_matching_line_count() {
        let ests = vec![NodeEstimate { rows: 3.4, cost: 10.6 }];
        let out = annotate_explain("TableScan(t)", &ests);
        assert_eq!(out, "TableScan(t) rows_est=3 cost=11\n");
        // Mismatch leaves the text untouched — no `rows_est=?` ever leaks.
        let out = annotate_explain("a\nb", &ests);
        assert_eq!(out, "a\nb");
        assert!(!out.contains("rows_est"));
    }

    #[test]
    fn effective_fanout_discounts_stale_distributions() {
        let fresh = GraphCost {
            vertices: 64.0,
            edges: 63.0,
            avg_out: 63.0 / 64.0,
            p90_out: 1.0,
            max_out: 63.0,
            fresh: true,
        };
        assert!(fresh.effective_fan_out() > 6.0, "hub visible when fresh");
        let stale = GraphCost { fresh: false, ..fresh };
        assert!(stale.effective_fan_out() < 1.0, "stale falls back to average");
    }

    #[test]
    fn order_insensitive_aggregates() {
        let count = AggSpec { func: AggFunc::Count, arg: None };
        assert!(agg_order_insensitive(&count));
        let int_sum = AggSpec {
            func: AggFunc::Sum,
            arg: Some(PhysExpr::Column { index: 0, ty: DataType::Integer }),
        };
        assert!(agg_order_insensitive(&int_sum));
        let dbl_sum = AggSpec {
            func: AggFunc::Sum,
            arg: Some(PhysExpr::Column { index: 0, ty: DataType::Double }),
        };
        assert!(!agg_order_insensitive(&dbl_sum), "f64 accumulation is order-sensitive");
    }

    #[test]
    fn conjunct_proofs() {
        let start_eq = PhysExpr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(PhysExpr::PathProp {
                col: 0,
                prop: PathProp::StartVertexId,
                ty: DataType::Integer,
            }),
            right: Box::new(PhysExpr::Literal(Value::Integer(7))),
        };
        assert!(conjunct_implied(&start_eq, 7, 2));
        assert!(!conjunct_implied(&start_eq, 8, 2));
        let len_eq = PhysExpr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(PhysExpr::PathProp {
                col: 0,
                prop: PathProp::Length,
                ty: DataType::Integer,
            }),
            right: Box::new(PhysExpr::Literal(Value::Integer(2))),
        };
        assert!(conjunct_implied(&len_eq, 7, 2));
        assert!(!conjunct_implied(&len_eq, 7, 3));
        // Anything unrecognized keeps the rewrite off.
        let other = PhysExpr::Literal(Value::Boolean(true));
        assert!(!conjunct_implied(&other, 7, 2));
    }
}
