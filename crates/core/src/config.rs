//! Engine configuration: optimizer flags and execution limits.
//!
//! The optimizer flags exist so the benchmark harness can ablate the
//! paper's individual design choices (EDBT 2018 §6): each flag disables one
//! optimization while keeping results identical (the engine always applies
//! residual predicates).

/// Which traversal the planner picks when the query gives no hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalChoice {
    /// The paper's §6.3 heuristic: BFS iff average fan-out `F` is smaller
    /// than the inferred maximum path length `L` (optimizes traversal
    /// memory: DFS holds ~`F·L` entries, BFS ~`F^L`).
    Auto,
    /// Always depth-first.
    Dfs,
    /// Always breadth-first.
    Bfs,
}

/// Optimizer switches (all on by default — the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerFlags {
    /// §6.1: infer `[min, max]` path-length windows from `PS.Length`
    /// predicates and indexed references. When off, only the default cap
    /// bounds traversal.
    pub length_inference: bool,
    /// §6.2: push edge/vertex predicates ahead of the path scan so doomed
    /// paths are pruned during traversal. When off, predicates are only
    /// applied residually above the scan.
    pub predicate_pushdown: bool,
    /// §6.2: check running path aggregates (e.g. `SUM(PS.Edges.Cost) < c`)
    /// during traversal. Sound for the non-negative attributes the paper
    /// assumes; the residual check still runs either way.
    pub aggregate_pushdown: bool,
    /// §5.1.2: traverse lazily (pull-based). When off, each path scan
    /// eagerly materializes every qualifying path before returning the
    /// first one (the ablation baseline for the lazy design).
    pub lazy_path_scan: bool,
    /// Physical traversal choice when the query has no hint.
    pub traversal: TraversalChoice,
    /// Cap applied when no maximum path length can be inferred. The paper
    /// notes most real traversal queries carry explicit length bounds; the
    /// cap keeps unbounded simple-path enumeration from exploding.
    pub default_max_path_len: usize,
}

impl Default for OptimizerFlags {
    fn default() -> Self {
        OptimizerFlags {
            length_inference: true,
            predicate_pushdown: true,
            aggregate_pushdown: true,
            lazy_path_scan: true,
            traversal: TraversalChoice::Auto,
            default_max_path_len: 8,
        }
    }
}

/// Execution resource limits.
///
/// `max_intermediate_rows` reproduces the paper's observation (§7.2) that
/// the Native Relational-Core approach dies on deep traversals because join
/// intermediate results exhaust temp memory: when a query's operators
/// produce more rows than the budget, execution aborts with
/// `Error::ResourceExhausted` — the harness reports those as DNF, like the
/// paper's Twitter plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecLimits {
    /// Maximum rows produced across all operators of one query
    /// (None = unlimited).
    pub max_intermediate_rows: Option<u64>,
}

/// Top-level engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineConfig {
    pub optimizer: OptimizerFlags,
    pub limits: ExecLimits,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let f = OptimizerFlags::default();
        assert!(f.length_inference);
        assert!(f.predicate_pushdown);
        assert!(f.aggregate_pushdown);
        assert!(f.lazy_path_scan);
        assert_eq!(f.traversal, TraversalChoice::Auto);
        assert!(f.default_max_path_len >= 1);
        assert_eq!(ExecLimits::default().max_intermediate_rows, None);
    }
}
