//! Engine configuration: optimizer flags and execution limits.
//!
//! The optimizer flags exist so the benchmark harness can ablate the
//! paper's individual design choices (EDBT 2018 §6): each flag disables one
//! optimization while keeping results identical (the engine always applies
//! residual predicates).

use grfusion_common::{Error, Result};

/// Error constructor shared by the strict `*_checked` env parsers: the
/// variable name and offending value always appear in the message, the way
/// malformed `GRFUSION_FAULTS` specs already report.
fn bad_env(var: &str, val: &str, why: &str) -> Error {
    Error::analysis(format!("invalid {var} `{val}`: {why}"))
}

/// Normalize a raw environment value: trim it and treat an empty or
/// whitespace-only string the same as unset (the `GRFUSION_FAULTS`
/// convention).
fn env_value(v: Option<&str>) -> Option<&str> {
    v.map(str::trim).filter(|t| !t.is_empty())
}

/// Which traversal the planner picks when the query gives no hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalChoice {
    /// The paper's §6.3 heuristic: BFS iff average fan-out `F` is smaller
    /// than the inferred maximum path length `L` (optimizes traversal
    /// memory: DFS holds ~`F·L` entries, BFS ~`F^L`).
    Auto,
    /// Always depth-first.
    Dfs,
    /// Always breadth-first.
    Bfs,
}

/// Optimizer switches (all on by default — the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerFlags {
    /// §6.1: infer `[min, max]` path-length windows from `PS.Length`
    /// predicates and indexed references. When off, only the default cap
    /// bounds traversal.
    pub length_inference: bool,
    /// §6.2: push edge/vertex predicates ahead of the path scan so doomed
    /// paths are pruned during traversal. When off, predicates are only
    /// applied residually above the scan.
    pub predicate_pushdown: bool,
    /// §6.2: check running path aggregates (e.g. `SUM(PS.Edges.Cost) < c`)
    /// during traversal. Sound for the non-negative attributes the paper
    /// assumes; the residual check still runs either way.
    pub aggregate_pushdown: bool,
    /// §5.1.2: traverse lazily (pull-based). When off, each path scan
    /// eagerly materializes every qualifying path before returning the
    /// first one (the ablation baseline for the lazy design).
    pub lazy_path_scan: bool,
    /// Physical traversal choice when the query has no hint.
    pub traversal: TraversalChoice,
    /// Cap applied when no maximum path length can be inferred. The paper
    /// notes most real traversal queries carry explicit length bounds; the
    /// cap keeps unbounded simple-path enumeration from exploding.
    pub default_max_path_len: usize,
    /// Statistics-driven cost-based plan selection (`GRFUSION_OPTIMIZER`).
    /// When on, the rule-based plan is re-costed against enumerable
    /// alternatives (traversal mode, iterated-join rewrite, pushdown
    /// ablation, join-order swap, row-vs-batch pipeline) using seal-time
    /// graph statistics and table row counts / NDV estimates; EXPLAIN gains
    /// per-node cardinality estimates. Off by default: the rule-based path
    /// stays byte-identical to the pre-optimizer engine.
    pub cost_based: bool,
}

impl Default for OptimizerFlags {
    fn default() -> Self {
        OptimizerFlags {
            length_inference: true,
            predicate_pushdown: true,
            aggregate_pushdown: true,
            lazy_path_scan: true,
            traversal: TraversalChoice::Auto,
            default_max_path_len: 8,
            cost_based: false,
        }
    }
}

impl OptimizerFlags {
    /// The default rule-based configuration with cost-based selection on.
    pub fn cost_based() -> Self {
        OptimizerFlags {
            cost_based: true,
            ..OptimizerFlags::default()
        }
    }

    /// Read `GRFUSION_OPTIMIZER` from the environment: `1` / `on` / `true`
    /// enables cost-based selection, anything else (or unset) keeps the
    /// rule-based planner byte-identical.
    pub fn from_env() -> Self {
        OptimizerFlags::from_env_value(std::env::var("GRFUSION_OPTIMIZER").ok().as_deref())
    }

    /// Pure parsing core of [`OptimizerFlags::from_env`] (testable without
    /// mutating process-global environment state).
    pub fn from_env_value(v: Option<&str>) -> Self {
        OptimizerFlags::from_env_value_checked(v).unwrap_or_else(|_| OptimizerFlags::default())
    }

    /// Strict twin of [`OptimizerFlags::from_env_value`]: only the on/off
    /// spellings are accepted; anything else is an error.
    pub fn from_env_value_checked(v: Option<&str>) -> Result<OptimizerFlags> {
        let Some(v) = env_value(v) else {
            return Ok(OptimizerFlags::default());
        };
        if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
            Ok(OptimizerFlags::cost_based())
        } else if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
            Ok(OptimizerFlags::default())
        } else {
            Err(bad_env(
                "GRFUSION_OPTIMIZER",
                v,
                "expected 1/on/true or 0/off/false",
            ))
        }
    }
}

/// Execution resource limits.
///
/// `max_intermediate_rows` reproduces the paper's observation (§7.2) that
/// the Native Relational-Core approach dies on deep traversals because join
/// intermediate results exhaust temp memory: when a query's operators
/// produce more rows than the budget, execution aborts with
/// `Error::ResourceExhausted` — the harness reports those as DNF, like the
/// paper's Twitter plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecLimits {
    /// Maximum rows produced across all operators of one query
    /// (None = unlimited).
    pub max_intermediate_rows: Option<u64>,
}

/// Intra-query parallelism knobs for the graph operators.
///
/// `workers = 1` (the default) is byte-for-byte today's serial execution
/// path. With `workers > 1`, standalone `PathScan`/`SPScan` seed sets are
/// split into `morsel_size` chunks and fanned out over scoped worker
/// threads; results are merged in deterministic seed order so rows are
/// bit-identical to serial execution. The row budget is charged on
/// *emission* (when the scan operator yields a path up the pipeline), never
/// during enumeration, so budget accounting is identical at any worker
/// count; the physical cost of morsels enumerating eagerly is bounded by
/// the governor's memory accountant and deadline instead
/// ([`GovernorConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for graph operators (1 = serial).
    pub workers: usize,
    /// Seed vertexes per morsel handed to a worker.
    pub morsel_size: usize,
}

impl ParallelConfig {
    /// Serial execution (the engine default).
    pub fn serial() -> Self {
        ParallelConfig {
            workers: 1,
            morsel_size: 64,
        }
    }

    /// Strict twin of [`ParallelConfig::from_env`]: a malformed or
    /// out-of-range value is an error instead of a silent fallback.
    /// `None` (or an empty string) means unset and keeps the default.
    pub fn from_env_values_checked(
        workers: Option<&str>,
        morsel: Option<&str>,
    ) -> Result<ParallelConfig> {
        let workers = match env_value(workers) {
            None => 1,
            Some(t) => match t.parse::<usize>() {
                Ok(n) if (1..=256).contains(&n) => n,
                _ => {
                    return Err(bad_env(
                        "GRFUSION_WORKERS",
                        t,
                        "expected an integer in 1..=256",
                    ))
                }
            },
        };
        let morsel_size = match env_value(morsel) {
            None => 64,
            Some(t) => match t.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    return Err(bad_env(
                        "GRFUSION_MORSEL_SIZE",
                        t,
                        "expected a positive integer",
                    ))
                }
            },
        };
        Ok(ParallelConfig {
            workers,
            morsel_size,
        })
    }

    /// Read `GRFUSION_WORKERS` / `GRFUSION_MORSEL_SIZE` from the
    /// environment; unset or unparsable values fall back to serial
    /// defaults. Worker counts are clamped to a sane ceiling. (The
    /// lenient path keeps `EngineConfig::default()` infallible; the
    /// engine separately surfaces malformed values via
    /// [`EngineConfig::env_error`].)
    pub fn from_env() -> Self {
        let workers = std::env::var("GRFUSION_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|w| w.clamp(1, 256))
            .unwrap_or(1);
        let morsel_size = std::env::var("GRFUSION_MORSEL_SIZE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|m| m.max(1))
            .unwrap_or(64);
        ParallelConfig {
            workers,
            morsel_size,
        }
    }

    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.clamp(1, 256),
            ..ParallelConfig::serial()
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

/// Runtime resource-governor limits, enforced per query by the
/// `governor::ExecContext` threaded through every operator and traversal
/// loop. Both limits default to off (None): governance is opt-in so the
/// default execution path stays zero-cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorConfig {
    /// Wall-clock deadline per query, in milliseconds. Exceeding it aborts
    /// with `Error::ResourceExhausted { kind: Deadline, .. }` at the next
    /// cooperative checkpoint.
    pub deadline_ms: Option<u64>,
    /// Byte cap on materialized intermediate state (paths, sort buffers,
    /// aggregation tables, join builds) per query. Exceeding it aborts with
    /// `Error::ResourceExhausted { kind: Bytes, .. }`.
    pub max_memory_bytes: Option<u64>,
}

impl GovernorConfig {
    /// Strict twin of [`GovernorConfig::from_env`]: `0` is an explicit
    /// "off", any other non-integer value is an error.
    pub fn from_env_values_checked(
        deadline: Option<&str>,
        memory: Option<&str>,
    ) -> Result<GovernorConfig> {
        let parse = |var: &str, v: Option<&str>| -> Result<Option<u64>> {
            match env_value(v) {
                None => Ok(None),
                Some(t) => match t.parse::<u64>() {
                    Ok(0) => Ok(None),
                    Ok(n) => Ok(Some(n)),
                    Err(_) => Err(bad_env(var, t, "expected a non-negative integer (0 = off)")),
                },
            }
        };
        Ok(GovernorConfig {
            deadline_ms: parse("GRFUSION_DEADLINE_MS", deadline)?,
            max_memory_bytes: parse("GRFUSION_MEMORY_BYTES", memory)?,
        })
    }

    /// Read `GRFUSION_DEADLINE_MS` / `GRFUSION_MEMORY_BYTES` from the
    /// environment; unset or unparsable values leave the limit off.
    pub fn from_env() -> Self {
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
        };
        GovernorConfig {
            deadline_ms: parse("GRFUSION_DEADLINE_MS"),
            max_memory_bytes: parse("GRFUSION_MEMORY_BYTES"),
        }
    }
}

/// Sealed-CSR topology layout policy.
///
/// When sealing is on (the default), every graph view compacts its
/// adjacency into contiguous CSR arrays right after materialization, and
/// post-seal DML maintenance diverts touched vertexes to a small delta
/// overlay that traversals merge on the fly. Once the overlaid share of
/// the vertex set exceeds `reseal_fraction`, the next DML statement
/// re-seals the view (inside the statement's atomicity scope, so a fault
/// or memory-cap abort during the re-seal rolls the statement back).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrConfig {
    /// Seal topologies into CSR arrays. Off = pure adjacency-list layout
    /// (the pre-CSR engine; also the differential oracle's "delta only"
    /// lane).
    pub sealed: bool,
    /// Overlaid-vertex fraction (of live vertexes) above which a DML
    /// statement triggers an automatic re-seal.
    pub reseal_fraction: f64,
}

impl CsrConfig {
    /// The engine default: sealing on, re-seal at 25% overlay.
    pub fn sealed() -> Self {
        CsrConfig {
            sealed: true,
            reseal_fraction: 0.25,
        }
    }

    /// Sealing disabled: topologies stay on per-vertex adjacency lists.
    pub fn adjacency_only() -> Self {
        CsrConfig {
            sealed: false,
            reseal_fraction: 0.25,
        }
    }

    /// Read `GRFUSION_CSR_RESEAL` from the environment: `0` / `off`
    /// disables sealing entirely (the escape hatch), a fraction in `(0, 1]`
    /// overrides the re-seal threshold, unset or unparsable keeps the
    /// default policy.
    pub fn from_env() -> Self {
        CsrConfig::from_env_value(std::env::var("GRFUSION_CSR_RESEAL").ok().as_deref())
    }

    /// Pure parsing core of [`CsrConfig::from_env`] (testable without
    /// mutating process-global environment state).
    pub fn from_env_value(v: Option<&str>) -> Self {
        CsrConfig::from_env_value_checked(v).unwrap_or_else(|_| CsrConfig::sealed())
    }

    /// Strict twin of [`CsrConfig::from_env_value`]: anything other than
    /// unset, `0`/`off`, or a fraction in `(0, 1]` is an error.
    pub fn from_env_value_checked(v: Option<&str>) -> Result<CsrConfig> {
        let Some(v) = env_value(v) else {
            return Ok(CsrConfig::sealed());
        };
        if v == "0" || v.eq_ignore_ascii_case("off") {
            return Ok(CsrConfig::adjacency_only());
        }
        match v.parse::<f64>() {
            Ok(f) if f > 0.0 && f <= 1.0 => Ok(CsrConfig {
                sealed: true,
                reseal_fraction: f,
            }),
            _ => Err(bad_env(
                "GRFUSION_CSR_RESEAL",
                v,
                "expected `0`/`off` or a fraction in (0, 1]",
            )),
        }
    }
}

impl Default for CsrConfig {
    fn default() -> Self {
        CsrConfig::sealed()
    }
}

/// Epoch-publication policy (MVCC-lite snapshot isolation).
///
/// When enabled, every committed statement publishes an immutable `Epoch`
/// — copy-on-write snapshots of all tables plus every graph view's sealed
/// CSR + delta topology — behind an atomically-swapped `Arc`. Reader
/// threads pin the current epoch for a whole query and never take the
/// writer's lock; superseded epochs are reclaimed when their last reader
/// drops. Off by default: the serial locked path stays byte-identical to
/// the pre-epoch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Publish epochs and route SELECTs through the pinned snapshot.
    pub enabled: bool,
}

impl EpochConfig {
    pub fn enabled() -> Self {
        EpochConfig { enabled: true }
    }

    pub fn disabled() -> Self {
        EpochConfig { enabled: false }
    }

    /// Read `GRFUSION_EPOCHS` from the environment: `1` / `on` enables
    /// epoch publication, anything else (or unset) keeps it off.
    pub fn from_env() -> Self {
        EpochConfig::from_env_value(std::env::var("GRFUSION_EPOCHS").ok().as_deref())
    }

    /// Pure parsing core of [`EpochConfig::from_env`] (testable without
    /// mutating process-global environment state).
    pub fn from_env_value(v: Option<&str>) -> Self {
        EpochConfig::from_env_value_checked(v).unwrap_or_else(|_| EpochConfig::disabled())
    }

    /// Strict twin of [`EpochConfig::from_env_value`]: only the on/off
    /// spellings are accepted; anything else is an error.
    pub fn from_env_value_checked(v: Option<&str>) -> Result<EpochConfig> {
        let Some(v) = env_value(v) else {
            return Ok(EpochConfig::disabled());
        };
        if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
            Ok(EpochConfig::enabled())
        } else if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
            Ok(EpochConfig::disabled())
        } else {
            Err(bad_env(
                "GRFUSION_EPOCHS",
                v,
                "expected 1/on/true or 0/off/false",
            ))
        }
    }
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig::disabled()
    }
}

/// Batch-at-a-time execution policy for the relational spine.
///
/// When enabled, the hot relational operators (table scan, filter, project,
/// the join family, aggregation) pull fixed-size columnar batches instead of
/// single tuples; graph operators keep emitting paths and a Batch↔Row
/// adapter composes both worlds in one QEP. Off by default: the row-at-a-
/// time volcano path stays byte-identical to the pre-batch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Route eligible relational operators through the batch pipeline.
    pub enabled: bool,
    /// Rows per batch (clamped to 1..=4096).
    pub size: usize,
}

/// Default rows per batch: large enough to amortize the per-batch virtual
/// dispatch, small enough to stay cache-resident for typical row widths.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Hard ceiling on rows per batch.
pub const MAX_BATCH_SIZE: usize = 4096;

impl BatchConfig {
    pub fn enabled() -> Self {
        BatchConfig {
            enabled: true,
            size: DEFAULT_BATCH_SIZE,
        }
    }

    pub fn disabled() -> Self {
        BatchConfig {
            enabled: false,
            size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Enabled with an explicit batch size (clamped to 1..=4096).
    pub fn with_size(size: usize) -> Self {
        BatchConfig {
            enabled: true,
            size: size.clamp(1, MAX_BATCH_SIZE),
        }
    }

    /// Read `GRFUSION_BATCH` from the environment: `1` / `on` / `true`
    /// enables batching at the default size, an integer in `1..=4096` sets
    /// the batch size, anything else (or unset) keeps it off.
    pub fn from_env() -> Self {
        BatchConfig::from_env_value(std::env::var("GRFUSION_BATCH").ok().as_deref())
    }

    /// Pure parsing core of [`BatchConfig::from_env`] (testable without
    /// mutating process-global environment state). Lenient: garbage keeps
    /// batching off, out-of-range sizes clamp.
    pub fn from_env_value(v: Option<&str>) -> Self {
        let Some(t) = env_value(v) else {
            return BatchConfig::disabled();
        };
        match BatchConfig::from_env_value_checked(v) {
            Ok(cfg) => cfg,
            // Preserve the historical clamp for a parseable-but-oversized
            // size; everything else falls back to off.
            Err(_) => match t.parse::<usize>() {
                Ok(n) if n >= 1 => BatchConfig::with_size(n),
                _ => BatchConfig::disabled(),
            },
        }
    }

    /// Strict twin of [`BatchConfig::from_env_value`]: on/off spellings or
    /// an integer in `1..=4096`; anything else is an error.
    pub fn from_env_value_checked(v: Option<&str>) -> Result<BatchConfig> {
        let Some(v) = env_value(v) else {
            return Ok(BatchConfig::disabled());
        };
        if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
            return Ok(BatchConfig::disabled());
        }
        if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
            return Ok(BatchConfig::enabled());
        }
        match v.parse::<usize>() {
            Ok(n) if (1..=MAX_BATCH_SIZE).contains(&n) => Ok(BatchConfig::with_size(n)),
            _ => Err(bad_env(
                "GRFUSION_BATCH",
                v,
                "expected 1/on/true, 0/off/false, or a batch size in 1..=4096",
            )),
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

/// Top-level engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    pub optimizer: OptimizerFlags,
    pub limits: ExecLimits,
    pub parallel: ParallelConfig,
    pub governor: GovernorConfig,
    pub csr: CsrConfig,
    pub epochs: EpochConfig,
    pub batch: BatchConfig,
}

impl Default for EngineConfig {
    /// The paper's configuration, plus any parallelism/governance requested
    /// through the environment (`GRFUSION_WORKERS`, `GRFUSION_DEADLINE_MS`,
    /// ...) — that hook is what lets CI run the whole suite down the
    /// parallel or governed path without code changes.
    fn default() -> Self {
        EngineConfig {
            optimizer: OptimizerFlags::from_env(),
            limits: ExecLimits::default(),
            parallel: ParallelConfig::from_env(),
            governor: GovernorConfig::from_env(),
            csr: CsrConfig::from_env(),
            epochs: EpochConfig::from_env(),
            batch: BatchConfig::from_env(),
        }
    }
}

impl EngineConfig {
    /// Strict twin of `EngineConfig::default()`: every `GRFUSION_*` engine
    /// knob is parsed with its `*_checked` parser, so a malformed value is
    /// an error instead of a silent fallback to defaults. (The
    /// `GRFUSION_FAULTS` plan is validated separately by
    /// `Database::with_config`, which owns its lifecycle.)
    pub fn from_env_checked() -> Result<EngineConfig> {
        let get = |k: &str| std::env::var(k).ok();
        Ok(EngineConfig {
            optimizer: OptimizerFlags::from_env_value_checked(
                get("GRFUSION_OPTIMIZER").as_deref(),
            )?,
            limits: ExecLimits::default(),
            parallel: ParallelConfig::from_env_values_checked(
                get("GRFUSION_WORKERS").as_deref(),
                get("GRFUSION_MORSEL_SIZE").as_deref(),
            )?,
            governor: GovernorConfig::from_env_values_checked(
                get("GRFUSION_DEADLINE_MS").as_deref(),
                get("GRFUSION_MEMORY_BYTES").as_deref(),
            )?,
            csr: CsrConfig::from_env_value_checked(get("GRFUSION_CSR_RESEAL").as_deref())?,
            epochs: EpochConfig::from_env_value_checked(get("GRFUSION_EPOCHS").as_deref())?,
            batch: BatchConfig::from_env_value_checked(get("GRFUSION_BATCH").as_deref())?,
        })
    }

    /// The first malformed `GRFUSION_*` engine knob in the current
    /// environment, rendered for the startup-error path (`None` when every
    /// set variable parses). `Database::with_config` remembers this and
    /// surfaces it on the first statement, the same contract as a
    /// malformed `GRFUSION_FAULTS` spec.
    pub fn env_error() -> Option<String> {
        EngineConfig::from_env_checked().err().map(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let f = OptimizerFlags::default();
        assert!(f.length_inference);
        assert!(f.predicate_pushdown);
        assert!(f.aggregate_pushdown);
        assert!(f.lazy_path_scan);
        assert_eq!(f.traversal, TraversalChoice::Auto);
        assert!(f.default_max_path_len >= 1);
        assert_eq!(ExecLimits::default().max_intermediate_rows, None);
        // ParallelConfig::default() is serial regardless of environment;
        // only EngineConfig::default() consults GRFUSION_WORKERS.
        assert_eq!(ParallelConfig::default().workers, 1);
        assert!(ParallelConfig::default().morsel_size >= 1);
    }

    #[test]
    fn parallel_config_sanitizes_inputs() {
        assert_eq!(ParallelConfig::with_workers(0).workers, 1);
        assert_eq!(ParallelConfig::with_workers(4).workers, 4);
        assert!(ParallelConfig::with_workers(1 << 20).workers <= 256);
        // EngineConfig::default() must always yield an executable config.
        let cfg = EngineConfig::default();
        assert!(cfg.parallel.workers >= 1);
        assert!(cfg.parallel.morsel_size >= 1);
    }

    #[test]
    fn governor_defaults_to_off() {
        let g = GovernorConfig::default();
        assert_eq!(g.deadline_ms, None);
        assert_eq!(g.max_memory_bytes, None);
    }

    #[test]
    fn batch_env_values() {
        let d = BatchConfig::from_env_value(None);
        assert!(!d.enabled);
        assert_eq!(d.size, DEFAULT_BATCH_SIZE);
        assert!(!BatchConfig::from_env_value(Some("0")).enabled);
        assert!(!BatchConfig::from_env_value(Some("off")).enabled);
        assert!(!BatchConfig::from_env_value(Some("FALSE")).enabled);
        let on = BatchConfig::from_env_value(Some("1"));
        assert!(on.enabled);
        assert_eq!(on.size, DEFAULT_BATCH_SIZE);
        assert!(BatchConfig::from_env_value(Some("on")).enabled);
        assert!(BatchConfig::from_env_value(Some("TRUE")).enabled);
        let sized = BatchConfig::from_env_value(Some("256"));
        assert!(sized.enabled);
        assert_eq!(sized.size, 256);
        // Sizes clamp into 1..=4096; garbage keeps batching off.
        assert_eq!(BatchConfig::from_env_value(Some("65536")).size, MAX_BATCH_SIZE);
        assert!(!BatchConfig::from_env_value(Some("nope")).enabled);
        assert!(!BatchConfig::from_env_value(Some("-4")).enabled);
        assert_eq!(BatchConfig::with_size(0).size, 1);
    }

    #[test]
    fn checked_workers_and_morsel_values() {
        let ok = ParallelConfig::from_env_values_checked(Some("4"), Some("16")).unwrap();
        assert_eq!((ok.workers, ok.morsel_size), (4, 16));
        // Unset / empty keep defaults.
        let d = ParallelConfig::from_env_values_checked(None, None).unwrap();
        assert_eq!((d.workers, d.morsel_size), (1, 64));
        assert_eq!(
            ParallelConfig::from_env_values_checked(Some("  "), Some("")).unwrap(),
            d
        );
        // Malformed or out-of-range values error and name the variable.
        for bad in ["abc", "0", "-1", "1048576", "2.5"] {
            let e = ParallelConfig::from_env_values_checked(Some(bad), None).unwrap_err();
            assert!(e.to_string().contains("GRFUSION_WORKERS"), "{e}");
            assert!(e.to_string().contains(bad.trim()), "{e}");
        }
        for bad in ["nope", "0", "-3"] {
            let e = ParallelConfig::from_env_values_checked(None, Some(bad)).unwrap_err();
            assert!(e.to_string().contains("GRFUSION_MORSEL_SIZE"), "{e}");
        }
    }

    #[test]
    fn checked_governor_values() {
        let g = GovernorConfig::from_env_values_checked(Some("50"), Some("1048576")).unwrap();
        assert_eq!(g.deadline_ms, Some(50));
        assert_eq!(g.max_memory_bytes, Some(1_048_576));
        // `0` is an explicit off, not an error.
        let off = GovernorConfig::from_env_values_checked(Some("0"), Some("0")).unwrap();
        assert_eq!(off, GovernorConfig::default());
        let e = GovernorConfig::from_env_values_checked(Some("fast"), None).unwrap_err();
        assert!(e.to_string().contains("GRFUSION_DEADLINE_MS"), "{e}");
        let e = GovernorConfig::from_env_values_checked(None, Some("-1")).unwrap_err();
        assert!(e.to_string().contains("GRFUSION_MEMORY_BYTES"), "{e}");
    }

    #[test]
    fn checked_csr_reseal_values() {
        assert!(CsrConfig::from_env_value_checked(None).unwrap().sealed);
        assert!(!CsrConfig::from_env_value_checked(Some("off")).unwrap().sealed);
        assert_eq!(
            CsrConfig::from_env_value_checked(Some("0.5"))
                .unwrap()
                .reseal_fraction,
            0.5
        );
        for bad in ["7", "nope", "-1", "0.0"] {
            let e = CsrConfig::from_env_value_checked(Some(bad)).unwrap_err();
            assert!(e.to_string().contains("GRFUSION_CSR_RESEAL"), "{e}");
        }
        // The lenient twin still falls back (EngineConfig::default() must
        // stay infallible; the engine surfaces the error separately).
        assert_eq!(CsrConfig::from_env_value(Some("7")), CsrConfig::sealed());
    }

    #[test]
    fn checked_epochs_values() {
        assert!(EpochConfig::from_env_value_checked(Some("on")).unwrap().enabled);
        assert!(!EpochConfig::from_env_value_checked(Some("0")).unwrap().enabled);
        assert!(!EpochConfig::from_env_value_checked(None).unwrap().enabled);
        let e = EpochConfig::from_env_value_checked(Some("yes please")).unwrap_err();
        assert!(e.to_string().contains("GRFUSION_EPOCHS"), "{e}");
    }

    #[test]
    fn checked_batch_values() {
        assert!(BatchConfig::from_env_value_checked(Some("on")).unwrap().enabled);
        assert_eq!(
            BatchConfig::from_env_value_checked(Some("256")).unwrap().size,
            256
        );
        assert!(!BatchConfig::from_env_value_checked(Some("off")).unwrap().enabled);
        for bad in ["65536", "nope", "-4", "1.5"] {
            let e = BatchConfig::from_env_value_checked(Some(bad)).unwrap_err();
            assert!(e.to_string().contains("GRFUSION_BATCH"), "{e}");
        }
    }

    #[test]
    fn checked_optimizer_values() {
        assert!(
            OptimizerFlags::from_env_value_checked(Some("1"))
                .unwrap()
                .cost_based
        );
        assert!(
            OptimizerFlags::from_env_value_checked(Some("ON"))
                .unwrap()
                .cost_based
        );
        assert!(
            !OptimizerFlags::from_env_value_checked(Some("0"))
                .unwrap()
                .cost_based
        );
        assert!(!OptimizerFlags::from_env_value_checked(None).unwrap().cost_based);
        let e = OptimizerFlags::from_env_value_checked(Some("fast")).unwrap_err();
        assert!(e.to_string().contains("GRFUSION_OPTIMIZER"), "{e}");
        // Lenient twin falls back to rule-based; every rule flag stays on
        // in both modes (cost_based only adds re-costing on top).
        let lenient = OptimizerFlags::from_env_value(Some("fast"));
        assert_eq!(lenient, OptimizerFlags::default());
        let on = OptimizerFlags::cost_based();
        assert!(on.cost_based && on.length_inference && on.predicate_pushdown);
    }

    #[test]
    fn csr_reseal_env_values() {
        let d = CsrConfig::from_env_value(None);
        assert!(d.sealed);
        assert_eq!(d.reseal_fraction, 0.25);
        assert!(!CsrConfig::from_env_value(Some("0")).sealed);
        assert!(!CsrConfig::from_env_value(Some("off")).sealed);
        assert!(!CsrConfig::from_env_value(Some("OFF")).sealed);
        let f = CsrConfig::from_env_value(Some("0.5"));
        assert!(f.sealed);
        assert_eq!(f.reseal_fraction, 0.5);
        // Out-of-range or garbage falls back to the default policy.
        assert_eq!(CsrConfig::from_env_value(Some("7")), CsrConfig::sealed());
        assert_eq!(CsrConfig::from_env_value(Some("nope")), CsrConfig::sealed());
        assert_eq!(CsrConfig::from_env_value(Some("-1")), CsrConfig::sealed());
    }
}
