//! Epoch-published snapshot isolation (MVCC-lite).
//!
//! The engine's writer stays strictly serial (the H-Store model the paper
//! builds on), but with epoch publication enabled every *committed*
//! statement publishes an immutable [`Epoch`]: copy-on-write snapshots of
//! all relational tables plus every graph view's topology (sealed CSR
//! arrays shared by `Arc`, delta overlay copied), behind an
//! atomically-swapped `Arc<Epoch>`. Reader threads pin the current epoch
//! with one `Arc` clone and run whole queries against it without taking
//! any lock the writer holds; a superseded epoch is reclaimed when its
//! last reader drops the pin.
//!
//! Lifecycle: seal → publish → overlay → re-seal → reclaim. The writer
//! builds the next delta inside the existing savepoint + fault-site
//! machinery (`dml.seal` faults and governor pre-charges still abort the
//! statement, which then publishes nothing), so every published epoch is
//! exactly the state after some committed statement prefix — a rolled-back
//! statement is never visible to any reader.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use grfusion_common::{Column, DataType, Error, Result, Schema, Value};
use grfusion_graph::GraphTopology;
use grfusion_storage::Table;
use crate::lockorder::{LockClass, OrderedMutex};

use crate::config::EngineConfig;
use crate::env::{GraphEnv, QueryEnv};
use crate::exec::{execute_plan, execute_plan_with_metrics};
use crate::governor::{CancelToken, ExecContext, FaultState};
use crate::graph_view::GraphViewDef;
use crate::planner::{plan_select, PlannerCtx};
use crate::result::ResultSet;

/// One graph view inside an epoch: the definition plus an immutable
/// topology snapshot (sealed CSR shared with the live topology by `Arc`;
/// the delta overlay and id maps are copies).
#[derive(Debug)]
pub(crate) struct EpochView {
    pub def: GraphViewDef,
    pub topo: Arc<GraphTopology>,
}

/// An immutable snapshot of everything a query can observe, published
/// after a committed statement. Tables and topologies are the very same
/// types the executor reads on the locked path, so the whole
/// planner/executor stack works against an epoch unchanged.
pub(crate) struct Epoch {
    /// Monotonically increasing publication number (0 = the epoch
    /// published at construction / enablement).
    pub number: u64,
    /// Lowercase table name → frozen table snapshot.
    pub tables: HashMap<String, Arc<Table>>,
    /// Lowercase graph-view name → frozen view snapshot.
    pub views: HashMap<String, EpochView>,
    /// Planner context matching this epoch's catalog (schemas and graph
    /// metadata only change on DDL, which always publishes a fresh one).
    pub plan_ctx: Arc<PlannerCtx>,
    /// Approximate resident bytes this epoch keeps alive while pinned.
    pub bytes: usize,
}

/// A caller-held pin on one published epoch. While the handle lives, the
/// epoch — its table snapshots and sealed topology — stays resident no
/// matter how many times the writer re-seals and republishes; dropping the
/// last handle reclaims it. This is the same pin a query's `ExecContext`
/// holds internally, exposed so tests and external snapshot consumers can
/// hold a snapshot across statements.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    pub(crate) ep: Arc<Epoch>,
}

impl EpochSnapshot {
    /// The pinned epoch's publication number.
    pub fn number(&self) -> u64 {
        self.ep.number
    }

    /// Approximate bytes this pin keeps resident.
    pub fn bytes(&self) -> usize {
        self.ep.bytes
    }

    /// Dump the pinned epoch's full logical state — byte-identical to what
    /// `Database::state_dump` produced when this epoch was current.
    pub fn state_dump(&self) -> String {
        state_dump_epoch(&self.ep)
    }
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("number", &self.number)
            .field("tables", &self.tables.len())
            .field("views", &self.views.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// The reader-side mirror of the engine knobs that live inside the
/// writer's mutex: epoch readers must never take that mutex, so
/// `set_config` / `cancel_token` / `set_fault_plan` update this copy in
/// the same call that updates the inner state.
pub(crate) struct ReaderShared {
    pub config: EngineConfig,
    pub cancel: Option<CancelToken>,
    pub faults: Option<Arc<FaultState>>,
    pub faults_err: Option<String>,
    pub env_err: Option<String>,
}

/// The publication point: holds the current epoch behind a tiny mutex
/// (lock → `Arc` clone → unlock; the writer swaps, readers pin) plus a
/// registry of weak handles for live-epoch accounting.
pub(crate) struct EpochHub {
    current: OrderedMutex<Option<Arc<Epoch>>>,
    registry: OrderedMutex<Vec<Weak<Epoch>>>,
    next: AtomicU64,
    enabled: AtomicBool,
    /// An explicit transaction is open: reads must go down the locked path
    /// so they observe their own uncommitted writes.
    txn_open: AtomicBool,
    shared: OrderedMutex<ReaderShared>,
}

impl EpochHub {
    pub fn new(shared: ReaderShared, enabled: bool) -> EpochHub {
        EpochHub {
            current: OrderedMutex::new(LockClass::EpochCurrent, None),
            registry: OrderedMutex::new(LockClass::EpochRegistry, Vec::new()),
            next: AtomicU64::new(0),
            enabled: AtomicBool::new(enabled),
            txn_open: AtomicBool::new(false),
            shared: OrderedMutex::new(LockClass::EpochShared, shared),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Flip publication on/off. Turning it off drops the current epoch
    /// (readers already holding a pin finish undisturbed).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
        if !on {
            *self.current.lock() = None;
        }
    }

    pub fn set_txn_open(&self, open: bool) {
        self.txn_open.store(open, Ordering::Release);
    }

    /// Pin the current epoch for a read, if reads should route through
    /// epochs right now (publication enabled, an epoch exists, and no
    /// explicit transaction is open).
    pub fn pin(&self) -> Option<Arc<Epoch>> {
        if !self.enabled() || self.txn_open.load(Ordering::Acquire) {
            return None;
        }
        self.current.lock().clone()
    }

    /// Number of the current epoch, if one is published.
    pub fn current_number(&self) -> Option<u64> {
        self.current.lock().as_ref().map(|e| e.number)
    }

    /// The current epoch regardless of transaction state — used by the
    /// writer to reuse clean table/view `Arc`s when publishing the next
    /// epoch (unlike [`EpochHub::pin`], which gates on `txn_open`).
    pub fn current_arc(&self) -> Option<Arc<Epoch>> {
        self.current.lock().clone()
    }

    /// Publish a new epoch: assign its number, swap it in as current, and
    /// register a weak handle for reclamation accounting.
    pub fn install(
        &self,
        tables: HashMap<String, Arc<Table>>,
        views: HashMap<String, EpochView>,
        plan_ctx: Arc<PlannerCtx>,
        bytes: usize,
    ) -> Arc<Epoch> {
        let ep = Arc::new(Epoch {
            number: self.next.fetch_add(1, Ordering::AcqRel),
            tables,
            views,
            plan_ctx,
            bytes,
        });
        {
            let mut reg = self.registry.lock();
            reg.retain(|w| w.strong_count() > 0);
            reg.push(Arc::downgrade(&ep));
        }
        *self.current.lock() = Some(ep.clone());
        ep
    }

    /// `(live epochs, retained bytes)`: how many published epochs are
    /// still alive (current included) and how many bytes superseded ones
    /// — kept alive only by reader pins — still hold. Retained bytes
    /// return to 0 once every old reader has dropped.
    pub fn live_stats(&self) -> (usize, usize) {
        let current = self.current_number();
        let mut reg = self.registry.lock();
        reg.retain(|w| w.strong_count() > 0);
        let mut live = 0usize;
        let mut retained = 0usize;
        for w in reg.iter() {
            if let Some(ep) = w.upgrade() {
                live += 1;
                if Some(ep.number) != current {
                    retained += ep.bytes;
                }
            }
        }
        (live, retained)
    }

    /// Update the reader-side mirror of config/cancel/fault state.
    pub fn update_shared(&self, f: impl FnOnce(&mut ReaderShared)) {
        f(&mut self.shared.lock());
    }

    /// Engine config as the readers see it.
    pub fn shared_config(&self) -> EngineConfig {
        self.shared.lock().config
    }

    /// Build a per-query governor context from the mirrored state — the
    /// epoch-path twin of `DbInner::exec_context`.
    pub fn shared_exec_context(&self) -> Result<ExecContext> {
        let s = self.shared.lock();
        if let Some(msg) = s.env_err.as_ref().or(s.faults_err.as_ref()) {
            return Err(Error::analysis(msg.clone()));
        }
        Ok(ExecContext::for_query(
            &s.config.governor,
            s.cancel.as_ref(),
            s.faults.clone(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Pinned-epoch query execution
// ---------------------------------------------------------------------------

/// Run a SELECT against a pinned epoch. The pin (an `Arc` clone stored in
/// the query's `ExecContext`) keeps the epoch alive for the whole query,
/// including any morsel workers, and is released when the query finishes —
/// normally, by error, or by cancellation/deadline.
pub(crate) fn run_select_epoch(
    hub: &EpochHub,
    ep: &Arc<Epoch>,
    select: &grfusion_sql::Select,
    collect_metrics: bool,
) -> Result<ResultSet> {
    let select = crate::db::fold_subqueries_with(
        &mut |s| run_select_epoch(hub, ep, s, false),
        select,
    )?;
    let cfg = hub.shared_config();
    let plan = plan_select(&select, &ep.plan_ctx, &cfg.optimizer)?;
    // Epoch twin of the locked path's cost-based re-planning: statistics
    // come from the pinned snapshot's tables/topologies, so concurrent
    // writers cannot skew an in-flight plan choice.
    let (plan, estimates, force_row) = if cfg.optimizer.cost_based {
        let catalog = cost_catalog_epoch(ep);
        let o = crate::cost::optimize(
            plan,
            &catalog,
            &ep.plan_ctx.graphs,
            &ep.plan_ctx.tables,
            &ep.plan_ctx.hash_indexed,
        )?;
        (o.plan, Some(o.estimates), o.prefer_row_pipeline)
    } else {
        (plan, None, false)
    };
    let mut rs = run_plan_epoch(hub, ep, &plan, Vec::new(), collect_metrics, force_row)?;
    if let (Some(m), Some(est)) = (rs.metrics.as_mut(), &estimates) {
        m.attach_estimates(est);
    }
    Ok(rs)
}

/// Snapshot the pinned epoch's statistics for the cost model.
fn cost_catalog_epoch(ep: &Epoch) -> crate::cost::CostCatalog {
    let mut cat = crate::cost::CostCatalog::new();
    for (n, t) in &ep.tables {
        cat.add_table(n, t.stats(), t.column_ndvs());
    }
    for (n, v) in &ep.views {
        cat.add_graph(n, v.topo.stats());
    }
    cat
}

/// Execute a compiled plan against a pinned epoch.
pub(crate) fn run_plan_epoch(
    hub: &EpochHub,
    ep: &Arc<Epoch>,
    plan: &crate::plan::PlanNode,
    params: Vec<Value>,
    collect_metrics: bool,
    force_row: bool,
) -> Result<ResultSet> {
    let cfg = hub.shared_config();
    let mut gov = hub.shared_exec_context()?;
    gov.epoch_pin = Some(ep.clone());
    let mut tables: HashMap<String, &Table> = HashMap::new();
    for (n, t) in &ep.tables {
        tables.insert(n.clone(), &**t);
    }
    let mut graphs: HashMap<String, GraphEnv<'_>> = HashMap::new();
    for (n, v) in &ep.views {
        let vertex_table = *tables
            .get(&v.def.vertex_source)
            .ok_or_else(|| Error::execution("missing vertex source table"))?;
        let edge_table = *tables
            .get(&v.def.edge_source)
            .ok_or_else(|| Error::execution("missing edge source table"))?;
        graphs.insert(
            n.clone(),
            GraphEnv {
                def: &v.def,
                topo: &v.topo,
                vertex_table,
                edge_table,
            },
        );
    }
    let env = QueryEnv {
        tables,
        graphs,
        limits: cfg.limits,
        parallel: cfg.parallel,
        params,
        gov,
        // Cost-model pipeline choice (see the locked path's `run_plan`).
        batch: if force_row {
            crate::config::BatchConfig::disabled()
        } else {
            cfg.batch
        },
    };
    let (rows, metrics) = if collect_metrics {
        let (rows, mut m) = execute_plan_with_metrics(plan, &env)?;
        m.epoch = Some(ep.number);
        (rows, Some(m))
    } else {
        (execute_plan(plan, &env)?, None)
    };
    Ok(ResultSet {
        schema: plan.schema().clone(),
        rows,
        rows_affected: 0,
        metrics,
    })
}

/// `EXPLAIN ANALYZE` over a pinned epoch: run instrumented, discard the
/// rows, return the annotated plan text (first line `epoch=N`).
pub(crate) fn explain_analyze_epoch(
    hub: &EpochHub,
    ep: &Arc<Epoch>,
    select: &grfusion_sql::Select,
) -> Result<ResultSet> {
    let rs = run_select_epoch(hub, ep, select, true)?;
    let Some(metrics) = rs.metrics else {
        return Err(Error::execution("instrumented run returned no metrics"));
    };
    let plan_schema = Arc::new(Schema::new(vec![Column::new("plan", DataType::Varchar)]));
    let rows = metrics
        .render()
        .lines()
        .map(|l| vec![Value::text(l)])
        .collect();
    Ok(ResultSet {
        schema: plan_schema,
        rows,
        rows_affected: 0,
        metrics: Some(metrics),
    })
}

// ---------------------------------------------------------------------------
// Epoch state dump
// ---------------------------------------------------------------------------

/// Deterministic dump of an epoch's observable state, byte-identical in
/// format to `Database::state_dump` on the locked path: every table's live
/// rows with their stable ids, then every topology, all name-sorted. Safe
/// to call from any reader thread without stopping the writer.
pub(crate) fn state_dump_epoch(ep: &Epoch) -> String {
    let mut out = String::new();
    let mut table_names: Vec<&String> = ep.tables.keys().collect();
    table_names.sort();
    for name in table_names {
        let t = &ep.tables[name];
        let mut rows: Vec<(u64, String)> = t
            .scan()
            .map(|(id, row)| {
                let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                (id.0, vals.join(","))
            })
            .collect();
        rows.sort_unstable();
        out.push_str(&format!("table {} rows={}\n", name, rows.len()));
        for (id, vals) in rows {
            out.push_str(&format!("r @{id} {vals}\n"));
        }
    }
    let mut view_names: Vec<&String> = ep.views.keys().collect();
    view_names.sort();
    for n in view_names {
        out.push_str(&ep.views[n].topo.topology_dump());
    }
    out
}

/// The dirty set of one committed statement: lowercase names of tables and
/// graph views it touched. `None` means "treat everything as dirty" (DDL,
/// commit/rollback of a whole transaction).
pub(crate) type DirtySet<'a> = Option<(&'a HashSet<String>, &'a HashSet<String>)>;
