//! Runtime lock-order cross-validator.
//!
//! The static `lock-order` pass in `xtask` (see
//! `xtask/src/passes/lock_order.rs`) checks acquisition nesting from
//! source text; this module checks the *same rank table* dynamically, so
//! the two validate each other: a discipline the static pass cannot see
//! (acquisition split across functions) still trips the runtime guard,
//! and a static false positive would show up as a suite that passes here.
//!
//! [`OrderedMutex`] wraps `parking_lot::Mutex` with a [`LockClass`]; each
//! thread keeps a stack of held classes, and acquiring a class whose rank
//! is ≤ the innermost held rank panics with both class names. The
//! documented order (DESIGN.md):
//!
//! `DbInner` (0) → `EpochHub.shared` (1) → `EpochHub.registry` (2) →
//! `EpochHub.current` (3) → topology rwlock (4).
//!
//! Gating mirrors `GRFUSION_CHECK_CONTRACTS`: on by default in debug
//! builds (the whole test suite cross-validates), off in release;
//! `GRFUSION_LOCK_ORDER=1` forces on, `=0`/`off` forces off. When off the
//! wrapper is a plain mutex — one branch on a cached bool per acquisition.

use std::cell::RefCell;
use std::sync::OnceLock;

use parking_lot::{Mutex, MutexGuard};

/// Ranked lock classes, mirroring the static pass's table exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockClass {
    /// `Database.inner` — the outermost engine lock.
    DbInner,
    /// `EpochHub.shared` — reader-visible config/stats.
    EpochShared,
    /// `EpochHub.registry` — weak refs to published epochs.
    EpochRegistry,
    /// `EpochHub.current` — the published epoch slot.
    EpochCurrent,
    /// The network front-end's tenant admission registry
    /// (`grfusion-server`). A strict leaf: admission bookkeeping must
    /// never be held across a call into the engine (which starts at
    /// `DbInner`, rank 0), so it ranks after every engine lock — holding
    /// it while acquiring anything engine-side trips the validator.
    TenantRegistry,
}

impl LockClass {
    pub fn rank(self) -> u8 {
        match self {
            LockClass::DbInner => 0,
            LockClass::EpochShared => 1,
            LockClass::EpochRegistry => 2,
            LockClass::EpochCurrent => 3,
            // Rank 4 is the topology rwlock (tracked only by the static
            // pass); the tenant registry leaf sits after it.
            LockClass::TenantRegistry => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LockClass::DbInner => "DbInner",
            LockClass::EpochShared => "EpochHub.shared",
            LockClass::EpochRegistry => "EpochHub.registry",
            LockClass::EpochCurrent => "EpochHub.current",
            LockClass::TenantRegistry => "TenantRegistry",
        }
    }
}

/// Whether the runtime validator is active (process-wide, read once).
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("GRFUSION_LOCK_ORDER") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => false,
        Ok(_) => true,
        Err(_) => cfg!(debug_assertions),
    })
}

thread_local! {
    /// Ranks of ordered locks this thread currently holds, in acquisition
    /// order (innermost last).
    static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
}

/// Record an acquisition; `Err` describes the violation. Split from the
/// panic so unit tests can exercise the checker without aborting.
pub(crate) fn note_acquire(class: LockClass) -> Result<(), String> {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&worst) = held.iter().filter(|h| h.rank() >= class.rank()).max_by_key(|h| h.rank()) {
            return Err(format!(
                "lock-order violation: acquiring `{}` (rank {}) while holding `{}` (rank {}); \
                 documented order is DbInner -> EpochHub.shared -> EpochHub.registry -> EpochHub.current",
                class.name(),
                class.rank(),
                worst.name(),
                worst.rank()
            ));
        }
        held.push(class);
        Ok(())
    })
}

/// Record a release (guard drop). Removes the innermost entry of `class`.
pub(crate) fn note_release(class: LockClass) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == class) {
            held.remove(pos);
        }
    });
}

/// A `parking_lot::Mutex` that participates in lock-order validation.
pub struct OrderedMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    pub fn new(class: LockClass, value: T) -> OrderedMutex<T> {
        OrderedMutex { class, inner: Mutex::new(value) }
    }

    pub fn lock(&self) -> OrderedGuard<'_, T> {
        let tracked = enabled();
        if tracked {
            if let Err(msg) = note_acquire(self.class) {
                panic!("{msg}");
            }
        }
        OrderedGuard { guard: self.inner.lock(), class: self.class, tracked }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex").field("class", &self.class).field("inner", &self.inner).finish()
    }
}

/// Guard returned by [`OrderedMutex::lock`]; pops the held-stack entry on
/// drop when tracking was active at acquisition.
pub struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    class: LockClass,
    tracked: bool,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            note_release(self.class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_held() {
        HELD.with(|h| h.borrow_mut().clear());
    }

    #[test]
    fn conforming_nesting_is_accepted() {
        drain_held();
        assert!(note_acquire(LockClass::DbInner).is_ok());
        assert!(note_acquire(LockClass::EpochRegistry).is_ok());
        assert!(note_acquire(LockClass::EpochCurrent).is_ok());
        note_release(LockClass::EpochCurrent);
        note_release(LockClass::EpochRegistry);
        note_release(LockClass::DbInner);
    }

    #[test]
    fn inversion_is_rejected_with_both_class_names() {
        drain_held();
        assert!(note_acquire(LockClass::EpochCurrent).is_ok());
        let err = note_acquire(LockClass::DbInner).unwrap_err();
        assert!(err.contains("`DbInner` (rank 0)"), "{err}");
        assert!(err.contains("`EpochHub.current` (rank 3)"), "{err}");
        note_release(LockClass::EpochCurrent);
    }

    #[test]
    fn same_class_recursion_is_rejected() {
        drain_held();
        assert!(note_acquire(LockClass::EpochShared).is_ok());
        assert!(note_acquire(LockClass::EpochShared).is_err());
        note_release(LockClass::EpochShared);
    }

    #[test]
    fn release_unwinds_and_reacquire_is_clean() {
        drain_held();
        assert!(note_acquire(LockClass::EpochCurrent).is_ok());
        note_release(LockClass::EpochCurrent);
        assert!(note_acquire(LockClass::DbInner).is_ok());
        note_release(LockClass::DbInner);
    }

    #[test]
    fn ordered_mutex_roundtrip() {
        let m = OrderedMutex::new(LockClass::EpochCurrent, 41);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 42);
    }
}
