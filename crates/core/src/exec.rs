//! Volcano-style execution of physical plans.
//!
//! Operators are pull-based (`next()` returns one row), so laziness
//! propagates end-to-end: a `LIMIT 1` reachability query stops the
//! underlying graph traversal after the first qualifying path (EDBT 2018
//! §5.1.2). Graph operators emit ordinary rows, which is how they compose
//! with the relational operators in one pipeline (§5.2).
//!
//! The executor runs against a [`QueryEnv`] of plain references: the engine
//! acquires read guards for every table/topology once per query (serial
//! H-Store-style execution), so operators never lock per row.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

use grfusion_common::value::GroupKey;
use grfusion_common::{Error, PathData, ResourceKind, Result, Row, Value};
use grfusion_graph::{
    shortest_path, shortest_path_with_stats, BfsPaths, DfsPaths, EdgeSlot, GraphTopology,
    KShortestPaths, TopologyLayout, TraversalFilter, TraversalSpec, VertexSlot,
};
use grfusion_sql::IndexEnd;

use crate::analyze::NodeContract;
use crate::env::{GraphEnv, QueryEnv};
use crate::expr::{AggFunc, CmpOp, PathTarget, PhysExpr};
use crate::governor::{
    path_bytes, row_bytes, ExecContext, FaultState, EXPANSION_CHECK_INTERVAL, OP_CHECK_INTERVAL,
};
use crate::metrics::{GovCounters, GraphCounters, MetricsSink, NodeSlot, QueryMetrics};
use crate::plan::{
    AggSpec, PathScanConfig, PlanNode, PushedAggPred, PushedPred, PushedTest, ScanMode,
    StartSource,
};

/// Shared row budget: reproduces the paper's temp-memory exhaustion for
/// join-heavy plans (§7.2). Every row produced by a scan or join ticks it —
/// always at *emission* time (when the operator yields the row up the
/// pipeline), never during enumeration, so accounting is identical at any
/// worker count and a `LIMIT 1` query charges one scan row whether the
/// paths behind it were enumerated serially or by a morsel pool.
///
/// The counter is atomic only so the budget type stays shareable across
/// the parallel scan's scoped threads; workers never charge it.
pub struct RowBudget {
    produced: AtomicU64,
    limit: Option<u64>,
}

impl RowBudget {
    pub fn new(limit: Option<u64>) -> Self {
        RowBudget {
            produced: AtomicU64::new(0),
            limit,
        }
    }

    #[inline]
    pub(crate) fn tick(&self) -> Result<()> {
        let total = self.produced.fetch_add(1, AtomicOrdering::Relaxed) + 1;
        if let Some(l) = self.limit {
            if total > l {
                return Err(Error::resource(ResourceKind::Rows, total, l));
            }
        }
        Ok(())
    }

    pub fn produced(&self) -> u64 {
        self.produced.load(AtomicOrdering::Relaxed)
    }
}

/// Coerce a probe key to the indexed column's type so hash lookups honor
/// SQL's cross-numeric equality (`uId = 2.0` must find integer 2; a key of
/// an incompatible type matches nothing).
pub(crate) fn index_probe_key(v: Value, ty: grfusion_common::DataType) -> Option<Value> {
    use grfusion_common::DataType;
    match (ty, &v) {
        (DataType::Integer, Value::Double(d)) => {
            // Strict i64 range: the upper bound is exclusive because
            // `i64::MAX as f64` rounds up to 2^63, so `<= i64::MAX as f64`
            // admits 9223372036854775808.0 and `as` saturates it to
            // i64::MAX — a probe key that silently matched the wrong row.
            // `i64::MIN as f64` is exactly -(2^63) and remains inclusive.
            if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d < 9_223_372_036_854_775_808.0 {
                Some(Value::Integer(*d as i64))
            } else {
                None
            }
        }
        (DataType::Double, Value::Integer(i)) => Some(Value::Double(*i as f64)),
        _ if ty.admits(&v) && !v.is_null() => Some(v),
        _ => None,
    }
}

/// Execute a plan to completion, materializing the result rows.
pub fn execute_plan(plan: &PlanNode, env: &QueryEnv<'_>) -> Result<Vec<Row>> {
    let budget = RowBudget::new(env.limits.max_intermediate_rows);
    let contracts = contracts_enabled().then(|| ContractCtx::new(plan));
    let batch_ok = crate::batch::batch_active(env) && !crate::batch::plan_has_limit(plan);
    let mut op = build(plan, env, &budget, None, contracts.as_ref(), 0, batch_ok)?;
    let mut rows = Vec::new();
    while let Some(row) = op.next()? {
        rows.push(row);
    }
    Ok(rows)
}

/// Execute a plan with per-operator instrumentation (`EXPLAIN ANALYZE`).
/// Every operator is wrapped in a metering shim; graph operators also
/// report traversal counters. Returns the rows plus the metrics snapshot.
pub fn execute_plan_with_metrics(
    plan: &PlanNode,
    env: &QueryEnv<'_>,
) -> Result<(Vec<Row>, QueryMetrics)> {
    let budget = RowBudget::new(env.limits.max_intermediate_rows);
    let sink = MetricsSink::new();
    let contracts = contracts_enabled().then(|| ContractCtx::new(plan));
    let batch_ok = crate::batch::batch_active(env) && !crate::batch::plan_has_limit(plan);
    let rows = {
        let mut op = build(plan, env, &budget, Some(&sink), contracts.as_ref(), 0, batch_ok)?;
        let mut rows = Vec::new();
        while let Some(row) = op.next()? {
            rows.push(row);
        }
        rows
    };
    Ok((rows, sink.finish()))
}

/// A pull-based operator.
pub(crate) trait Op<'e> {
    fn next(&mut self) -> Result<Option<Row>>;

    /// Cumulative graph-traversal counters, for operators that walk the
    /// topology (`PathScan`/`PathJoin`). Relational operators return `None`.
    fn graph_stats(&self) -> Option<GraphCounters> {
        None
    }

    /// Cumulative resource-governor counters (bytes charged to the memory
    /// accountant, cooperative checks performed). `None` when this operator
    /// does neither.
    fn governor_stats(&self) -> Option<GovCounters> {
        None
    }

    /// Topology layout this operator traverses (sealed CSR, delta overlay,
    /// or plain adjacency). `None` for relational operators.
    fn layout(&self) -> Option<TopologyLayout> {
        None
    }
}

pub(crate) type BoxOp<'e> = Box<dyn Op<'e> + 'e>;

/// Metering shim wrapped around every operator when metrics collection is
/// on. Each `next()` is timed (inclusive of children, PostgreSQL-style)
/// and counted into the shared [`NodeSlot`]; graph counters are re-read
/// after each pull so the slot always holds the operator's running totals.
/// The shim deliberately does NOT forward `graph_stats()`: the inner
/// operator's counters must not be double-counted by an outer shim.
struct MeteredOp<'e> {
    inner: BoxOp<'e>,
    slot: Rc<NodeSlot>,
}

impl<'e> Op<'e> for MeteredOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        let start = Instant::now();
        let r = self.inner.next();
        let elapsed = start.elapsed().as_nanos() as u64;
        self.slot
            .record_next(elapsed, matches!(r, Ok(Some(_))));
        if let Some(g) = self.inner.graph_stats() {
            self.slot.set_graph(g);
        }
        if let Some(g) = self.inner.governor_stats() {
            self.slot.set_gov(g);
        }
        if let Some(l) = self.inner.layout() {
            self.slot.set_layout(l);
        }
        r
    }
}

/// Whether the [`CheckedOp`] contract shim is active. Defaults to on in
/// debug builds (so the whole test suite runs self-checking) and off in
/// release builds (zero cost); `GRFUSION_CHECK_CONTRACTS=1` forces it on,
/// `=0` forces it off.
fn contracts_enabled() -> bool {
    match std::env::var("GRFUSION_CHECK_CONTRACTS") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => false,
        Ok(_) => true,
        Err(_) => cfg!(debug_assertions),
    }
}

/// Pre-order list of statically inferred per-node contracts, consumed by
/// [`build`] with a cursor as it walks the plan in the same order.
pub(crate) struct ContractCtx {
    contracts: Vec<NodeContract>,
    cursor: Cell<usize>,
}

impl ContractCtx {
    pub(crate) fn new(plan: &PlanNode) -> ContractCtx {
        ContractCtx {
            contracts: crate::analyze::node_contracts(plan),
            cursor: Cell::new(0),
        }
    }

    pub(crate) fn next_contract(&self) -> Option<NodeContract> {
        let i = self.cursor.get();
        self.cursor.set(i + 1);
        self.contracts.get(i).cloned()
    }
}

/// Contract shim (the debug-mode twin of [`MeteredOp`]): asserts every
/// emitted tuple against the node's statically inferred schema — arity,
/// per-column type where statically certain, and inferred NOT NULL. A
/// violation means the analyzer and the executor disagree; surfacing it
/// at the offending operator beats corrupting downstream state.
struct CheckedOp<'e> {
    inner: BoxOp<'e>,
    contract: NodeContract,
    label: String,
}

impl<'e> Op<'e> for CheckedOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        let r = self.inner.next()?;
        if let Some(row) = &r {
            self.check(row)?;
        }
        Ok(r)
    }

    /// Forwarded: the metering shim sits *outside* this one and reads its
    /// inner operator's traversal counters through it.
    fn graph_stats(&self) -> Option<GraphCounters> {
        self.inner.graph_stats()
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }

    fn layout(&self) -> Option<TopologyLayout> {
        self.inner.layout()
    }
}

impl CheckedOp<'_> {
    fn check(&self, row: &Row) -> Result<()> {
        check_row_contract(&self.contract, &self.label, row)
    }
}

/// Assert one emitted row against a node's statically inferred contract.
/// Shared between the row-mode [`CheckedOp`] shim and the batch pipeline's
/// per-batch contract shim, which applies it to every row of every batch.
pub(crate) fn check_row_contract(c: &NodeContract, label: &str, row: &Row) -> Result<()> {
    if row.len() != c.schema.len() {
        return Err(Error::execution(format!(
            "operator contract violation at {label}: emitted {} columns, schema declares {}",
            row.len(),
            c.schema.len()
        )));
    }
    for (i, v) in row.iter().enumerate() {
        let col = c.schema.column(i);
        if v.is_null() {
            if !c.nullable[i] {
                return Err(Error::execution(format!(
                    "operator contract violation at {label}: column {i} (`{}`) was inferred NOT NULL but emitted NULL",
                    col.name
                )));
            }
            continue;
        }
        if c.check[i] && !col.data_type.admits(v) {
            return Err(Error::execution(format!(
                "operator contract violation at {label}: column {i} (`{}`) declared {} but emitted {v}",
                col.name, col.data_type
            )));
        }
    }
    Ok(())
}

/// Governor shim, wrapped around every operator when the query carries an
/// active [`ExecContext`]: polls the deadline/cancel token every
/// [`OP_CHECK_INTERVAL`] `next()` calls, plus once when the inner operator
/// reports exhaustion — a traversal whose filter tripped mid-walk drains to
/// `Ok(None)`, and that final check converts the silent truncation into the
/// governor's typed error before the consumer can mistake it for a clean
/// end-of-stream.
struct GovernedOp<'e> {
    inner: BoxOp<'e>,
    ctx: &'e ExecContext,
    pulls: u64,
    checks: u64,
}

impl<'e> Op<'e> for GovernedOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        self.pulls += 1;
        if self.pulls % OP_CHECK_INTERVAL == 0 {
            self.checks += 1;
            self.ctx.check_now()?;
        }
        let r = self.inner.next()?;
        if r.is_none() {
            self.checks += 1;
            self.ctx.check_now()?;
        }
        Ok(r)
    }

    fn graph_stats(&self) -> Option<GraphCounters> {
        self.inner.graph_stats()
    }

    /// The inner operator's counters (bytes it charged) merged with this
    /// shim's own check count.
    fn governor_stats(&self) -> Option<GovCounters> {
        let mut g = self.inner.governor_stats().unwrap_or_default();
        g.checks += self.checks;
        Some(g)
    }

    fn layout(&self) -> Option<TopologyLayout> {
        self.inner.layout()
    }
}

/// Deterministic fault-injection shim (the test-harness twin of
/// [`MeteredOp`]/[`CheckedOp`]), wrapped innermost when a fault plan is
/// armed: every `next()` records one hit of the node's label as an
/// injection site, and the plan's matching rule (if any) converts the
/// chosen hit into an injected error — so tests can fail a specific
/// operator at a specific pull count and prove the abort path cleans up.
struct FaultOp<'e> {
    inner: BoxOp<'e>,
    site: String,
    faults: &'e FaultState,
}

impl<'e> Op<'e> for FaultOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        self.faults.hit(&self.site)?;
        self.inner.next()
    }

    fn graph_stats(&self) -> Option<GraphCounters> {
        self.inner.graph_stats()
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }

    fn layout(&self) -> Option<TopologyLayout> {
        self.inner.layout()
    }
}

pub(crate) fn build<'e>(
    plan: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
    batch_ok: bool,
) -> Result<BoxOp<'e>> {
    // Batch interception: when batching is permitted for this query
    // (`batch_ok` — computed once at the root: batching enabled, no row
    // budget, no fault plan, no LIMIT anywhere in the plan) and this
    // subtree's root is a batch-native relational operator, the whole
    // native prefix of the subtree runs batch-at-a-time and comes back
    // behind a Batch→Row adapter. Registration and contract consumption
    // happen inside `build_batch` in the same pre-order walk, so EXPLAIN
    // output and contract assignment are identical in both modes.
    if batch_ok && crate::batch::batch_native(plan) {
        return crate::batch::build_batch_bridge(plan, env, budget, sink, contracts, depth);
    }
    // Register before building children so the sink's node list comes out
    // in pre-order — the same order as the `EXPLAIN` lines. The contract
    // cursor advances in the same pre-order walk.
    let slot = sink.map(|s| s.register(plan.node_label(), depth));
    let contract = contracts.and_then(|c| c.next_contract());
    let op = build_inner(plan, env, budget, sink, contracts, depth, batch_ok)?;
    // Shim order, innermost out: Fault (inject at the operator itself),
    // Checked (contracts see injected-free rows only — faults abort, they
    // don't corrupt), Governed (deadline/cancel polling), Metered
    // (timing includes all governance overhead, like any other cost).
    let op = match env.gov.faults() {
        Some(faults) => Box::new(FaultOp {
            inner: op,
            site: plan.node_label(),
            faults,
        }) as BoxOp<'e>,
        None => op,
    };
    let op = match contract {
        Some(contract) => Box::new(CheckedOp {
            inner: op,
            contract,
            label: plan.node_label(),
        }) as BoxOp<'e>,
        None => op,
    };
    let op = if env.gov.active() {
        Box::new(GovernedOp {
            inner: op,
            ctx: &env.gov,
            pulls: 0,
            checks: 0,
        }) as BoxOp<'e>
    } else {
        op
    };
    Ok(match slot {
        Some(slot) => Box::new(MeteredOp { inner: op, slot }),
        None => op,
    })
}

/// Per-operator memory accounting handle: a local running total (surfaced
/// in `EXPLAIN ANALYZE` as the node's `bytes=`) plus the shared accountant
/// the bytes are charged against. Only materializing operators hold one,
/// and only when the governor is active — `mem_tracker` returns `None`
/// otherwise, so the default path never computes byte estimates.
pub(crate) struct MemTracker<'e> {
    ctx: &'e ExecContext,
    bytes: Cell<u64>,
}

impl MemTracker<'_> {
    #[inline]
    pub(crate) fn charge(&self, n: u64) -> Result<()> {
        self.bytes.set(self.bytes.get() + n);
        self.ctx.charge_bytes(n)
    }

    pub(crate) fn counters(&self) -> GovCounters {
        GovCounters {
            bytes: self.bytes.get(),
            checks: 0,
        }
    }
}

pub(crate) fn mem_tracker<'e>(env: &'e QueryEnv<'e>) -> Option<MemTracker<'e>> {
    env.gov.active().then(|| MemTracker {
        ctx: &env.gov,
        bytes: Cell::new(0),
    })
}

fn build_inner<'e>(
    plan: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
    batch_ok: bool,
) -> Result<BoxOp<'e>> {
    Ok(match plan {
        PlanNode::TableScan { table, filter, .. } => {
            let t = env.table(table)?;
            Box::new(TableScanOp {
                iter: Box::new(t.scan().map(|(_, r)| r)),
                filter: filter.as_ref(),
                env,
                budget,
            })
        }
        PlanNode::IndexLookup {
            table,
            column,
            key,
            filter,
            ..
        } => {
            let t = env.table(table)?;
            let col_ty = t.schema().column(*column).data_type;
            let key_val = index_probe_key(key.eval(&Vec::new(), env)?, col_ty);
            let ids = match t.index_on(*column, Some(grfusion_storage::IndexKind::Hash)) {
                Some(ix) => key_val.map(|k| ix.get(&k)).unwrap_or_default(),
                None => {
                    return Err(Error::execution(format!(
                        "planned index lookup but table `{table}` has no hash index on column {column}"
                    )));
                }
            };
            Box::new(IndexLookupOp {
                table: t,
                ids,
                pos: 0,
                filter: filter.as_ref(),
                env,
                budget,
            })
        }
        PlanNode::VertexScan { graph, filter, .. } => {
            let genv = env.graph(graph)?;
            Box::new(VertexScanOp {
                genv,
                slots: Box::new(genv.topo.vertex_slots()),
                filter: filter.as_ref(),
                env,
                budget,
            })
        }
        PlanNode::EdgeScan { graph, filter, .. } => {
            let genv = env.graph(graph)?;
            Box::new(EdgeScanOp {
                genv,
                slots: Box::new(genv.topo.edge_slots()),
                filter: filter.as_ref(),
                env,
                budget,
            })
        }
        PlanNode::PathScan { config, .. } => {
            // With workers > 1 the seed set is fanned out over a morsel
            // pool; the merged buffer comes back in serial order with its
            // bytes already charged by the workers (the row budget is
            // charged at emission below, like every serial variant). Scans
            // the pool cannot take (reachability fast path) fall back to
            // the serial probe.
            let scan = if env.parallel.workers > 1 {
                match crate::parallel::try_parallel_path_scan(config, env)? {
                    Some(outcome) => {
                        let mut stats = GraphCounters::default();
                        for w in &outcome.workers {
                            stats.merge(&w.counters);
                        }
                        if let Some(s) = sink {
                            s.record_workers(outcome.workers);
                        }
                        ActiveScan::Parallel {
                            iter: outcome.paths.into_iter(),
                            stats,
                            gov: outcome.gov,
                        }
                    }
                    None => PathProbe::start(config, &Vec::new(), env)?,
                }
            } else {
                PathProbe::start(config, &Vec::new(), env)?
            };
            // Buffered/parallel variants charged their bytes while
            // materializing; a tracker here would double-charge them at
            // emission.
            let tracker = match scan {
                ActiveScan::Parallel { .. } | ActiveScan::Buffered { .. } => None,
                _ => mem_tracker(env),
            };
            Box::new(PathScanOp {
                scan,
                budget,
                tracker,
                layout: env.graph(&config.graph)?.topo.layout(),
            })
        }
        PlanNode::PathJoin { outer, config, .. } => {
            let outer_op = build(outer, env, budget, sink, contracts, depth + 1, batch_ok)?;
            Box::new(PathJoinOp {
                outer: outer_op,
                current: None,
                config,
                env,
                budget,
                stats_done: GraphCounters::default(),
                gov_done: GovCounters::default(),
                tracker: mem_tracker(env),
                layout: env.graph(&config.graph)?.topo.layout(),
            })
        }
        PlanNode::Filter {
            input, predicate, ..
        } => Box::new(FilterOp {
            input: build(input, env, budget, sink, contracts, depth + 1, batch_ok)?,
            predicate,
            env,
        }),
        PlanNode::NestedLoopJoin {
            left,
            right,
            condition,
            ..
        } => Box::new(NestedLoopJoinOp {
            left_rows: None,
            left: Some(build(left, env, budget, sink, contracts, depth + 1, batch_ok)?),
            right: build(right, env, budget, sink, contracts, depth + 1, batch_ok)?,
            right_row: None,
            left_pos: 0,
            condition: condition.as_ref(),
            env,
            budget,
            tracker: mem_tracker(env),
        }),
        PlanNode::IndexJoin {
            outer,
            table,
            column,
            key,
            filter,
            ..
        } => {
            let t = env.table(table)?;
            if t.index_on(*column, Some(grfusion_storage::IndexKind::Hash))
                .is_none()
            {
                return Err(Error::execution(format!(
                    "planned index join but table `{table}` has no hash index on column {column}"
                )));
            }
            Box::new(IndexJoinOp {
                outer: build(outer, env, budget, sink, contracts, depth + 1, batch_ok)?,
                table: t,
                column: *column,
                key,
                filter: filter.as_ref(),
                current: None,
                env,
                budget,
            })
        }
        PlanNode::Project { input, exprs, .. } => Box::new(ProjectOp {
            input: build(input, env, budget, sink, contracts, depth + 1, batch_ok)?,
            exprs,
            env,
        }),
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            ..
        } => Box::new(AggregateOp {
            input: Some(build(input, env, budget, sink, contracts, depth + 1, batch_ok)?),
            group_exprs,
            aggs,
            env,
            output: Vec::new(),
            pos: 0,
            done: false,
            tracker: mem_tracker(env),
        }),
        PlanNode::Sort { input, keys, .. } => Box::new(SortOp {
            input: Some(build(input, env, budget, sink, contracts, depth + 1, batch_ok)?),
            keys,
            env,
            rows: Vec::new(),
            pos: 0,
            done: false,
            tracker: mem_tracker(env),
        }),
        PlanNode::Limit { input, limit, .. } => Box::new(LimitOp {
            input: build(input, env, budget, sink, contracts, depth + 1, batch_ok)?,
            remaining: *limit,
        }),
        PlanNode::Distinct { input, .. } => Box::new(DistinctOp {
            input: build(input, env, budget, sink, contracts, depth + 1, batch_ok)?,
            seen: std::collections::HashSet::new(),
            tracker: mem_tracker(env),
        }),
    })
}

/// Streaming duplicate elimination: a row passes the first time its
/// group-key form is seen.
struct DistinctOp<'e> {
    input: BoxOp<'e>,
    seen: std::collections::HashSet<Vec<GroupKey>>,
    tracker: Option<MemTracker<'e>>,
}

impl<'e> Op<'e> for DistinctOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
            if self.seen.insert(key) {
                // The seen-set retains (a key form of) every distinct row.
                if let Some(t) = &self.tracker {
                    t.charge(row_bytes(&row))?;
                }
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.tracker.as_ref().map(|t| t.counters())
    }
}

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

struct TableScanOp<'e> {
    iter: Box<dyn Iterator<Item = &'e Row> + 'e>,
    filter: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
}

impl<'e> Op<'e> for TableScanOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        for row in self.iter.by_ref() {
            if let Some(f) = self.filter {
                if !f.matches(row, self.env)? {
                    continue;
                }
            }
            self.budget.tick()?;
            return Ok(Some(row.clone())); // alloc-ok: Op contract returns owned rows
        }
        Ok(None)
    }
}

struct IndexLookupOp<'e> {
    table: &'e grfusion_storage::Table,
    ids: Vec<grfusion_common::RowId>,
    pos: usize,
    filter: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
}

impl<'e> Op<'e> for IndexLookupOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        while self.pos < self.ids.len() {
            let id = self.ids[self.pos];
            self.pos += 1;
            let Some(row) = self.table.get(id) else {
                continue;
            };
            if let Some(f) = self.filter {
                if !f.matches(row, self.env)? {
                    continue;
                }
            }
            self.budget.tick()?;
            return Ok(Some(row.clone())); // alloc-ok: Op contract returns owned rows
        }
        Ok(None)
    }
}

struct FilterOp<'e> {
    input: BoxOp<'e>,
    predicate: &'e PhysExpr,
    env: &'e QueryEnv<'e>,
}

impl<'e> Op<'e> for FilterOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.matches(&row, self.env)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectOp<'e> {
    input: BoxOp<'e>,
    exprs: &'e [PhysExpr],
    env: &'e QueryEnv<'e>,
}

impl<'e> Op<'e> for ProjectOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    out.push(e.eval(&row, self.env)?);
                }
                Ok(Some(out))
            }
        }
    }
}

struct LimitOp<'e> {
    input: BoxOp<'e>,
    remaining: u64,
}

impl<'e> Op<'e> for LimitOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
        }
    }
}

/// Nested-loop join: the LEFT side is buffered, the RIGHT side is streamed
/// once. Output rows are `left ⊕ right` in right-major order. Keeping the
/// right side streamed preserves laziness when the right side is a path
/// scan (the common cross-model shape after the planner's reordering).
struct NestedLoopJoinOp<'e> {
    left: Option<BoxOp<'e>>,
    left_rows: Option<Vec<Row>>,
    right: BoxOp<'e>,
    right_row: Option<Row>,
    left_pos: usize,
    condition: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    tracker: Option<MemTracker<'e>>,
}

impl<'e> Op<'e> for NestedLoopJoinOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.left_rows.is_none() {
            let mut rows = Vec::new();
            if let Some(mut left) = self.left.take() {
                while let Some(r) = left.next()? {
                    // The build side is retained for the whole join.
                    if let Some(t) = &self.tracker {
                        t.charge(row_bytes(&r))?;
                    }
                    rows.push(r);
                }
            }
            self.left_rows = Some(rows);
        }
        let Some(left_rows) = self.left_rows.as_ref() else {
            return Ok(None);
        };
        if left_rows.is_empty() {
            return Ok(None);
        }
        loop {
            if self.right_row.is_none() || self.left_pos >= left_rows.len() {
                match self.right.next()? {
                    None => return Ok(None),
                    Some(r) => {
                        self.right_row = Some(r);
                        self.left_pos = 0;
                    }
                }
            }
            let Some(right) = self.right_row.as_ref() else {
                return Ok(None);
            };
            while self.left_pos < left_rows.len() {
                let l = &left_rows[self.left_pos];
                self.left_pos += 1;
                let mut out = Vec::with_capacity(l.len() + right.len());
                out.extend_from_slice(l);
                out.extend_from_slice(right);
                if let Some(cond) = self.condition {
                    if !cond.matches(&out, self.env)? {
                        continue;
                    }
                }
                self.budget.tick()?;
                return Ok(Some(out));
            }
        }
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.tracker.as_ref().map(|t| t.counters())
    }
}

/// Index nested-loop join: per outer row, probe the inner table's hash
/// index and emit outer ⊕ inner. The per-hop join of SQLGraph-style
/// relational traversal (§7.2's "one relational join per edge traversal").
struct IndexJoinOp<'e> {
    outer: BoxOp<'e>,
    table: &'e grfusion_storage::Table,
    column: usize,
    key: &'e PhysExpr,
    filter: Option<&'e PhysExpr>,
    /// (outer row, matching inner row ids, cursor)
    current: Option<(Row, Vec<grfusion_common::RowId>, usize)>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
}

impl<'e> Op<'e> for IndexJoinOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some((outer_row, ids, pos)) = &mut self.current {
                while *pos < ids.len() {
                    let id = ids[*pos];
                    *pos += 1;
                    let Some(inner) = self.table.get(id) else {
                        continue;
                    };
                    if let Some(f) = self.filter {
                        if !f.matches(inner, self.env)? {
                            continue;
                        }
                    }
                    self.budget.tick()?;
                    let mut out = Vec::with_capacity(outer_row.len() + inner.len());
                    out.extend_from_slice(outer_row);
                    out.extend_from_slice(inner);
                    return Ok(Some(out));
                }
                self.current = None;
            }
            match self.outer.next()? {
                None => return Ok(None),
                Some(outer_row) => {
                    let col_ty = self.table.schema().column(self.column).data_type;
                    let key_val =
                        index_probe_key(self.key.eval(&outer_row, self.env)?, col_ty);
                    let ids = match key_val {
                        None => Vec::new(), // alloc-ok: empty Vec does not allocate
                        // The index's existence is verified at build time,
                        // but fail the query (not the process) if that
                        // invariant ever breaks.
                        Some(k) => match self
                            .table
                            .index_on(self.column, Some(grfusion_storage::IndexKind::Hash))
                        {
                            Some(ix) => ix.get(&k),
                            None => {
                                return Err(Error::execution(
                                    "hash index vanished between build and probe",
                                ))
                            }
                        },
                    };
                    self.current = Some((outer_row, ids, 0));
                }
            }
        }
    }
}

struct SortOp<'e> {
    input: Option<BoxOp<'e>>,
    keys: &'e [(PhysExpr, bool)],
    env: &'e QueryEnv<'e>,
    rows: Vec<Row>,
    pos: usize,
    done: bool,
    tracker: Option<MemTracker<'e>>,
}

impl<'e> Op<'e> for SortOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        if !self.done {
            let Some(mut input) = self.input.take() else {
                return Ok(None);
            };
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
            while let Some(row) = input.next()? {
                let mut key = Vec::with_capacity(self.keys.len());
                for (e, _) in self.keys {
                    key.push(e.eval(&row, self.env)?);
                }
                // The sort buffer holds every input row plus its key.
                if let Some(t) = &self.tracker {
                    t.charge(row_bytes(&row) + row_bytes(&key))?;
                }
                keyed.push((key, row));
            }
            let keys = self.keys;
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let ord = cmp_values_nulls_last(&ka[i], &kb[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            self.rows = keyed.into_iter().map(|(_, r)| r).collect();
            self.done = true;
        }
        if self.pos < self.rows.len() {
            let r = std::mem::take(&mut self.rows[self.pos]);
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.tracker.as_ref().map(|t| t.counters())
    }
}

/// Total order for sorting: NULLs sort last in ascending order.
fn cmp_values_nulls_last(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct AggState {
    pub(crate) count: i64,
    sum: f64,
    /// Exact integer accumulator: `f64` loses precision past 2^53, so an
    /// all-integer SUM is carried in `i128` (which cannot overflow from
    /// summing `i64`s) and checked back into `i64` at finish.
    isum: i128,
    sum_is_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    pub(crate) fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            isum: 0,
            sum_is_int: true,
            min: None,
            max: None,
        }
    }

    pub(crate) fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        if let Ok(d) = v.as_double() {
            self.sum += d;
            if let Value::Integer(i) = v {
                self.isum += *i as i128;
            } else {
                self.sum_is_int = false;
            }
        }
        if self
            .min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Less))
        {
            self.min = Some(v.clone());
        }
        if self
            .max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Greater))
        {
            self.max = Some(v.clone());
        }
        Ok(())
    }

    pub(crate) fn finish(&self, func: AggFunc) -> Result<Value> {
        Ok(match func {
            AggFunc::Count => Value::Integer(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Integer(
                        i64::try_from(self.isum)
                            .map_err(|_| Error::execution("integer overflow"))?,
                    )
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    // Divide from the exact accumulator: (a+b)/2 computed
                    // through a lossy f64 sum drifts for huge integers.
                    Value::Double(crate::expr::integer_avg(self.isum, self.count as i128))
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        })
    }
}

struct AggregateOp<'e> {
    input: Option<BoxOp<'e>>,
    group_exprs: &'e [PhysExpr],
    aggs: &'e [AggSpec],
    env: &'e QueryEnv<'e>,
    output: Vec<Row>,
    pos: usize,
    done: bool,
    tracker: Option<MemTracker<'e>>,
}

impl<'e> Op<'e> for AggregateOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        if !self.done {
            let Some(mut input) = self.input.take() else {
                return Ok(None);
            };
            let mut groups: HashMap<Vec<GroupKey>, (Row, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            while let Some(row) = input.next()? {
                let mut key = Vec::with_capacity(self.group_exprs.len());
                let mut key_vals = Vec::with_capacity(self.group_exprs.len());
                for g in self.group_exprs {
                    let v = g.eval(&row, self.env)?;
                    key.push(v.group_key());
                    key_vals.push(v);
                }
                // Each new group adds its key values plus one aggregation
                // state per aggregate to the hash table.
                if let Some(t) = &self.tracker {
                    if !groups.contains_key(&key) {
                        t.charge(
                            row_bytes(&key_vals)
                                + (self.aggs.len() * std::mem::size_of::<AggState>()) as u64,
                        )?;
                    }
                }
                let entry = groups.entry(key.clone()).or_insert_with(|| { // alloc-ok: std entry API needs an owned key
                    order.push(key);
                    (key_vals, vec![AggState::new(); self.aggs.len()]) // alloc-ok: runs once per new group
                });
                for (i, spec) in self.aggs.iter().enumerate() {
                    match &spec.arg {
                        None => {
                            // COUNT(*)
                            entry.1[i].count += 1;
                        }
                        Some(e) => {
                            let v = e.eval(&row, self.env)?;
                            entry.1[i].update(&v)?;
                        }
                    }
                }
            }
            if groups.is_empty() && self.group_exprs.is_empty() {
                // Global aggregate over an empty input: one row of defaults.
                let row: Row = self
                    .aggs
                    .iter()
                    .map(|spec| AggState::new().finish(spec.func))
                    .collect::<Result<_>>()?;
                self.output.push(row);
            } else {
                for key in order {
                    let Some((vals, states)) = groups.remove(&key) else {
                        continue;
                    };
                    let mut row = vals;
                    for (spec, st) in self.aggs.iter().zip(&states) {
                        row.push(st.finish(spec.func)?);
                    }
                    self.output.push(row);
                }
            }
            self.done = true;
        }
        if self.pos < self.output.len() {
            let r = std::mem::take(&mut self.output[self.pos]);
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.tracker.as_ref().map(|t| t.counters())
    }
}

// ---------------------------------------------------------------------------
// Graph operators
// ---------------------------------------------------------------------------

struct VertexScanOp<'e> {
    genv: &'e GraphEnv<'e>,
    slots: Box<dyn Iterator<Item = VertexSlot> + 'e>,
    filter: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
}

impl<'e> VertexScanOp<'e> {
    fn make_row(&self, slot: VertexSlot) -> Result<Row> {
        let g = self.genv;
        let mut row = Vec::with_capacity(g.def.vertex_attrs.len() + 3);
        row.push(Value::Integer(g.topo.vertex_id(slot)));
        let tuple = g.topo.vertex_tuple(slot);
        for (_, col) in &g.def.vertex_attrs {
            row.push(
                g.vertex_table
                    .get_value(tuple, *col)
                    .cloned()
                    .ok_or_else(|| Error::execution("dangling vertex tuple pointer"))?,
            );
        }
        row.push(Value::Integer(crate::env::degree_i64(g.topo.fan_in(slot))));
        row.push(Value::Integer(crate::env::degree_i64(g.topo.fan_out(slot))));
        Ok(row)
    }
}

impl<'e> Op<'e> for VertexScanOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(slot) = self.slots.next() {
            let row = self.make_row(slot)?;
            if let Some(f) = self.filter {
                if !f.matches(&row, self.env)? {
                    continue;
                }
            }
            self.budget.tick()?;
            return Ok(Some(row));
        }
        Ok(None)
    }
}

struct EdgeScanOp<'e> {
    genv: &'e GraphEnv<'e>,
    slots: Box<dyn Iterator<Item = EdgeSlot> + 'e>,
    filter: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
}

impl<'e> Op<'e> for EdgeScanOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        for slot in self.slots.by_ref() {
            let g = self.genv;
            let (from, to) = g.topo.edge_endpoints(slot);
            let mut row = Vec::with_capacity(g.def.edge_attrs.len() + 3);
            row.push(Value::Integer(g.topo.edge_id(slot)));
            row.push(Value::Integer(g.topo.vertex_id(from)));
            row.push(Value::Integer(g.topo.vertex_id(to)));
            let tuple = g.topo.edge_tuple(slot);
            for (_, col) in &g.def.edge_attrs {
                row.push(
                    g.edge_table
                        .get_value(tuple, *col)
                        .cloned()
                        .ok_or_else(|| Error::execution("dangling edge tuple pointer"))?,
                );
            }
            if let Some(f) = self.filter {
                if !f.matches(&row, self.env)? {
                    continue;
                }
            }
            self.budget.tick()?;
            return Ok(Some(row));
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Path scanning
// ---------------------------------------------------------------------------

/// How an attribute named in a pushed predicate is fetched during
/// traversal (resolved once when the scan starts).
#[derive(Debug, Clone, Copy)]
enum AttrAccess {
    EdgeCol(usize),
    VertexCol(usize),
    EdgeId,
    VertexId,
    FanIn,
    FanOut,
}

/// A pushed predicate with its right-hand side bound to concrete values.
struct BoundPred {
    start: u64,
    end: IndexEnd,
    access: AttrAccess,
    test: BoundTest,
}

enum BoundTest {
    Cmp { op: CmpOp, rhs: Value },
    In { list: Vec<Value>, negated: bool },
}

impl BoundPred {
    #[inline]
    fn applies_at(&self, pos: usize) -> bool {
        let p = pos as u64;
        match self.end {
            IndexEnd::At => p == self.start,
            IndexEnd::Bounded(b) => p >= self.start && p <= b,
            IndexEnd::Star => p >= self.start,
        }
    }

    fn check(&self, v: &Value) -> bool {
        match &self.test {
            BoundTest::Cmp { op, rhs } => op.test(v.sql_cmp(rhs)).is_truthy(),
            BoundTest::In { list, negated } => {
                let any = list.iter().any(|rv| v.sql_eq(rv) == Some(true));
                any != *negated
            }
        }
    }
}

/// A bound running-aggregate prune.
struct BoundAggPred {
    target: PathTarget,
    access: AttrAccess,
    op: CmpOp,
    rhs: Value,
}

/// Per-expansion governor hook carried by a bound [`EngineFilter`]: every
/// vertex/edge expansion the traversal offers to the filter ticks it, and
/// every [`EXPANSION_CHECK_INTERVAL`] ticks it polls the deadline/cancel
/// token. A failed poll *trips* the filter — it rejects everything from
/// then on, so the traversal drains in bounded time with no further
/// expansion work — and the typed error is re-derived by the engine's
/// scan-end `check_now` (deadline expiry is monotone, cancellation is
/// sticky). This is the hook that bounds traversals which spin for a long
/// time *without producing rows*: operator-level pull checks never fire
/// when no rows come up, but this one ticks on every expansion.
struct FilterGov<'e> {
    ctx: &'e ExecContext,
    ticks: Cell<u64>,
    checks: Cell<u64>,
    tripped: Cell<bool>,
}

/// The engine-side traversal filter: dereferences tuple pointers to check
/// pushed predicates while the graph is being walked (§6.2).
pub struct EngineFilter<'e> {
    genv: &'e GraphEnv<'e>,
    edge_preds: Vec<BoundPred>,
    vertex_preds: Vec<BoundPred>,
    agg_preds: Vec<BoundAggPred>,
    /// Tuple-pointer dereferences into the source tables (the §6.2 cost
    /// the paper plots). `Cell`: the fetches take `&self`, and each
    /// parallel worker binds its own filter, so no atomics are needed.
    derefs: Cell<u64>,
    /// Present iff the query's governor is active.
    gov: Option<FilterGov<'e>>,
}

impl<'e> EngineFilter<'e> {
    /// Whether any running-aggregate predicates were pushed down (they
    /// require prefix checks during traversal).
    pub(crate) fn has_agg_preds(&self) -> bool {
        !self.agg_preds.is_empty()
    }

    /// Tuple-pointer dereferences performed so far.
    pub(crate) fn derefs(&self) -> u64 {
        self.derefs.get()
    }

    /// Governor checks performed by this filter's expansion hook.
    pub(crate) fn gov_checks(&self) -> u64 {
        self.gov.as_ref().map_or(0, |g| g.checks.get())
    }

    /// Tick the expansion counter; returns `false` once the governor has
    /// tripped (pruning every further expansion).
    #[inline]
    fn gov_ok(&self) -> bool {
        let Some(g) = &self.gov else {
            return true;
        };
        if g.tripped.get() {
            return false;
        }
        let t = g.ticks.get() + 1;
        g.ticks.set(t);
        if t % EXPANSION_CHECK_INTERVAL == 0 {
            g.checks.set(g.checks.get() + 1);
            if g.ctx.check_now().is_err() {
                g.tripped.set(true);
                return false;
            }
        }
        true
    }

    fn fetch_edge(&self, g: &GraphTopology, e: EdgeSlot, access: AttrAccess) -> Value {
        match access {
            AttrAccess::EdgeId => Value::Integer(g.edge_id(e)),
            AttrAccess::EdgeCol(c) => {
                self.derefs.set(self.derefs.get() + 1);
                self.genv
                    .edge_table
                    .get_value(g.edge_tuple(e), c)
                    .cloned()
                    .unwrap_or(Value::Null)
            }
            _ => Value::Null,
        }
    }

    fn fetch_vertex(&self, g: &GraphTopology, v: VertexSlot, access: AttrAccess) -> Value {
        match access {
            AttrAccess::VertexId => Value::Integer(g.vertex_id(v)),
            AttrAccess::FanIn => Value::Integer(crate::env::degree_i64(g.fan_in(v))),
            AttrAccess::FanOut => Value::Integer(crate::env::degree_i64(g.fan_out(v))),
            AttrAccess::VertexCol(c) => {
                self.derefs.set(self.derefs.get() + 1);
                self.genv
                    .vertex_table
                    .get_value(g.vertex_tuple(v), c)
                    .cloned()
                    .unwrap_or(Value::Null)
            }
            _ => Value::Null,
        }
    }
}

impl<'e> TraversalFilter for EngineFilter<'e> {
    fn edge_allowed(&self, g: &GraphTopology, edge: EdgeSlot, hop: usize) -> bool {
        if !self.gov_ok() {
            return false;
        }
        self.edge_preds.iter().all(|p| {
            !p.applies_at(hop) || p.check(&self.fetch_edge(g, edge, p.access))
        })
    }

    fn vertex_allowed(&self, g: &GraphTopology, vertex: VertexSlot, position: usize) -> bool {
        if !self.gov_ok() {
            return false;
        }
        self.vertex_preds.iter().all(|p| {
            !p.applies_at(position) || p.check(&self.fetch_vertex(g, vertex, p.access))
        })
    }

    fn prefix_allowed(&self, g: &GraphTopology, path: &PathData) -> bool {
        self.agg_preds.iter().all(|p| {
            let mut sum = 0.0f64;
            match p.target {
                PathTarget::Edges => {
                    for &eid in &path.edges {
                        if let Ok(slot) = g.edge_slot(eid) {
                            if let Ok(d) = self.fetch_edge(g, slot, p.access).as_double() {
                                sum += d;
                            }
                        }
                    }
                }
                PathTarget::Vertexes => {
                    for &vid in &path.vertexes {
                        if let Ok(slot) = g.vertex_slot(vid) {
                            if let Ok(d) = self.fetch_vertex(g, slot, p.access).as_double() {
                                sum += d;
                            }
                        }
                    }
                }
            }
            p.op.test(Value::Double(sum).sql_cmp(&p.rhs)).is_truthy()
        })
    }
}

fn resolve_attr(genv: &GraphEnv<'_>, target: PathTarget, attr: &str) -> Result<AttrAccess> {
    Ok(match target {
        PathTarget::Edges => {
            if attr.eq_ignore_ascii_case("id") {
                AttrAccess::EdgeId
            } else {
                AttrAccess::EdgeCol(genv.def.edge_attr_col(attr).ok_or_else(|| {
                    Error::analysis(format!(
                        "graph view `{}` has no edge attribute `{attr}`",
                        genv.def.name
                    ))
                })?)
            }
        }
        PathTarget::Vertexes => {
            if attr.eq_ignore_ascii_case("id") {
                AttrAccess::VertexId
            } else if attr.eq_ignore_ascii_case("fanin") {
                AttrAccess::FanIn
            } else if attr.eq_ignore_ascii_case("fanout") {
                AttrAccess::FanOut
            } else {
                AttrAccess::VertexCol(genv.def.vertex_attr_col(attr).ok_or_else(|| {
                    Error::analysis(format!(
                        "graph view `{}` has no vertex attribute `{attr}`",
                        genv.def.name
                    ))
                })?)
            }
        }
    })
}

/// Bind pushed predicates against one outer row.
pub(crate) fn bind_filter<'e>(
    config: &PathScanConfig,
    outer_row: &Row,
    env: &'e QueryEnv<'e>,
    genv: &'e GraphEnv<'e>,
) -> Result<EngineFilter<'e>> {
    let bind_pred = |p: &PushedPred| -> Result<BoundPred> {
        let access = resolve_attr(genv, p.target, &p.attr)?;
        let test = match &p.test {
            PushedTest::Cmp { op, rhs } => BoundTest::Cmp {
                op: *op,
                rhs: rhs.eval(outer_row, env)?,
            },
            PushedTest::In { list, negated } => BoundTest::In {
                list: list
                    .iter()
                    .map(|e| e.eval(outer_row, env))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
        };
        Ok(BoundPred {
            start: p.start,
            end: p.end,
            access,
            test,
        })
    };
    let bind_agg = |p: &PushedAggPred| -> Result<BoundAggPred> {
        Ok(BoundAggPred {
            target: p.target,
            access: resolve_attr(genv, p.target, &p.attr)?,
            op: p.op,
            rhs: p.rhs.eval(outer_row, env)?,
        })
    };
    Ok(EngineFilter {
        genv,
        edge_preds: config
            .edge_preds
            .iter()
            .map(bind_pred)
            .collect::<Result<_>>()?,
        vertex_preds: config
            .vertex_preds
            .iter()
            .map(bind_pred)
            .collect::<Result<_>>()?,
        agg_preds: config
            .agg_preds
            .iter()
            .map(bind_agg)
            .collect::<Result<_>>()?,
        derefs: Cell::new(0),
        gov: env.gov.active().then(|| FilterGov {
            ctx: &env.gov,
            ticks: Cell::new(0),
            checks: Cell::new(0),
            tripped: Cell::new(false),
        }),
    })
}

/// Boxed edge-cost function used by shortest-path scans.
type CostFn<'e> = Box<dyn Fn(&GraphTopology, EdgeSlot) -> f64 + 'e>;

/// An in-flight traversal for one probe (or for a standalone scan).
enum ActiveScan<'e> {
    Dfs(DfsPaths<'e, EngineFilter<'e>>),
    Bfs(BfsPaths<'e, EngineFilter<'e>>),
    Sp {
        iter: KShortestPaths<'e, EngineFilter<'e>, CostFn<'e>>,
        min_len: usize,
    },
    /// Eager ablation mode (or a finished reachability fast path):
    /// everything materialized up front, with the traversal and governor
    /// counters of the enumeration that produced the buffer.
    Buffered {
        iter: std::vec::IntoIter<PathData>,
        stats: GraphCounters,
        gov: GovCounters,
    },
    /// Parallel fan-out result: materialized and merged in serial order.
    /// The workers charged each path's bytes to the memory accountant
    /// while enumerating; the row budget is charged at emission like every
    /// other variant.
    Parallel {
        iter: std::vec::IntoIter<PathData>,
        stats: GraphCounters,
        gov: GovCounters,
    },
    /// A probe whose start vertex does not exist (no matches).
    Empty,
}

impl<'e> ActiveScan<'e> {
    fn next_path(&mut self) -> Result<Option<PathData>> {
        match self {
            ActiveScan::Dfs(it) => Ok(it.next()),
            ActiveScan::Bfs(it) => Ok(it.next()),
            ActiveScan::Sp { iter, min_len } => {
                for p in iter.by_ref() {
                    if p.length() >= *min_len {
                        return Ok(Some(p));
                    }
                }
                if let Some(e) = iter.take_error() {
                    return Err(e);
                }
                Ok(None)
            }
            ActiveScan::Buffered { iter, .. } => Ok(iter.next()),
            ActiveScan::Parallel { iter, .. } => Ok(iter.next()),
            ActiveScan::Empty => Ok(None),
        }
    }

    /// The scan's cumulative traversal counters so far.
    fn graph_counters(&self) -> GraphCounters {
        match self {
            ActiveScan::Dfs(it) => GraphCounters {
                vertices_visited: it.vertices_visited(),
                edges_expanded: it.edges_examined(),
                tuple_derefs: it.filter().derefs(),
            },
            ActiveScan::Bfs(it) => GraphCounters {
                vertices_visited: it.vertices_visited(),
                edges_expanded: it.edges_examined(),
                tuple_derefs: it.filter().derefs(),
            },
            ActiveScan::Sp { iter, .. } => GraphCounters {
                vertices_visited: iter.vertices_visited(),
                edges_expanded: iter.edges_examined(),
                tuple_derefs: iter.filter().derefs(),
            },
            ActiveScan::Buffered { stats, .. } | ActiveScan::Parallel { stats, .. } => *stats,
            ActiveScan::Empty => GraphCounters::default(),
        }
    }

    /// Governor work attributable to the scan itself: expansion-hook
    /// checks from the bound filter (in-flight traversals) or the counters
    /// recorded when the buffer was materialized.
    fn gov_counters(&self) -> GovCounters {
        match self {
            ActiveScan::Dfs(it) => GovCounters {
                bytes: 0,
                checks: it.filter().gov_checks(),
            },
            ActiveScan::Bfs(it) => GovCounters {
                bytes: 0,
                checks: it.filter().gov_checks(),
            },
            ActiveScan::Sp { iter, .. } => GovCounters {
                bytes: 0,
                checks: iter.filter().gov_checks(),
            },
            ActiveScan::Buffered { gov, .. } | ActiveScan::Parallel { gov, .. } => *gov,
            ActiveScan::Empty => GovCounters::default(),
        }
    }

    /// Whether path bytes should be charged as paths are emitted. False
    /// for materialized variants, which charged during enumeration.
    fn charges_on_emission(&self) -> bool {
        !matches!(
            self,
            ActiveScan::Buffered { .. } | ActiveScan::Parallel { .. }
        )
    }
}

/// Visited-set BFS from `seed` to `target`, bounded by `max_len` hops,
/// honoring the (uniform) traversal filter. Returns the hop-minimal path,
/// which by minimality satisfies any max-only length window, plus the
/// (vertices visited, edges examined) work counters of the search.
fn targeted_bfs(
    topo: &GraphTopology,
    seed: VertexSlot,
    target: VertexSlot,
    max_len: usize,
    filter: &EngineFilter<'_>,
) -> (Option<PathData>, u64, u64) {
    use std::collections::{HashMap, VecDeque};
    let mut vertices = 0u64;
    let mut edges = 0u64;
    if !filter.vertex_allowed(topo, seed, 0) {
        return (None, vertices, edges);
    }
    vertices += 1;
    // Walks the parent chain back to the seed. Returns `None` on a broken
    // chain (an impossible state — but "path not found" degrades far
    // better than a panic mid-query).
    let reconstruct = |parents: &HashMap<VertexSlot, (VertexSlot, EdgeSlot)>| {
        let mut vs = vec![target];
        let mut es = Vec::new();
        let mut cur = target;
        while cur != seed {
            let &(p, e) = parents.get(&cur)?;
            vs.push(p);
            es.push(e);
            cur = p;
        }
        vs.reverse();
        es.reverse();
        Some(PathData {
            graph_view: topo.name().to_string(),
            vertexes: vs.iter().map(|&s| topo.vertex_id(s)).collect(),
            edges: es.iter().map(|&s| topo.edge_id(s)).collect(),
            cost: 0.0,
        })
    };
    if seed == target {
        return (
            Some(PathData::seed(topo.name(), topo.vertex_id(seed))),
            vertices,
            edges,
        );
    }
    let view = topo.view();
    let mut parents: HashMap<VertexSlot, (VertexSlot, EdgeSlot)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back((seed, 0usize));
    while let Some((v, depth)) = queue.pop_front() {
        if depth >= max_len {
            continue;
        }
        for (e, t) in view.out_hops(v) {
            edges += 1;
            if !filter.edge_allowed(topo, e, depth) {
                continue;
            }
            if t == seed || parents.contains_key(&t) {
                continue;
            }
            if !filter.vertex_allowed(topo, t, depth + 1) {
                continue;
            }
            parents.insert(t, (v, e));
            vertices += 1;
            if t == target {
                return (reconstruct(&parents), vertices, edges);
            }
            queue.push_back((t, depth + 1));
        }
    }
    (None, vertices, edges)
}

/// Shared probe-start logic for `PathScan` and `PathJoin`.
struct PathProbe;

impl PathProbe {
    fn start<'e>(
        config: &PathScanConfig,
        outer_row: &Row,
        env: &'e QueryEnv<'e>,
    ) -> Result<ActiveScan<'e>> {
        let genv = env.graph(&config.graph)?;
        let topo = genv.topo;
        let filter = bind_filter(config, outer_row, env, genv)?;

        // Resolve seeds.
        let seeds: Vec<VertexSlot> = match &config.start {
            StartSource::AllVertexes => topo.vertex_slots().collect(),
            StartSource::Constant(e) | StartSource::Probe(e) => {
                let v = e.eval(outer_row, env)?;
                if v.is_null() {
                    return Ok(ActiveScan::Empty);
                }
                let id = v.as_integer()?;
                match topo.vertex_slot(id) {
                    Ok(slot) => vec![slot],
                    Err(_) => return Ok(ActiveScan::Empty),
                }
            }
        };

        // Single-path fast path (planner-proven safe): the query needs at
        // most one path to the pinned target, so run a visited-set BFS —
        // or, under a SHORTESTPATH hint, classic closed-set Dijkstra —
        // instead of enumerating simple paths.
        // Classic Dijkstra ignores hop counts while searching, so under a
        // SHORTESTPATH hint the fast path only applies when the length
        // window is the planner's uncapped default — an explicit hop bound
        // falls back to the bounded k-shortest enumerator.
        let fast_ok = match &config.mode {
            ScanMode::ShortestPath { .. } => config.max_len >= 64,
            _ => true,
        };
        if config.reachability && fast_ok {
            let Some(end_expr) = &config.end else {
                return Err(Error::plan("reachability scan without end anchor"));
            };
            let v = end_expr.eval(outer_row, env)?;
            if v.is_null() {
                return Ok(ActiveScan::Empty);
            }
            let Ok(target) = topo.vertex_slot(v.as_integer()?) else {
                return Ok(ActiveScan::Empty);
            };
            let Some(&seed) = seeds.first() else {
                return Ok(ActiveScan::Empty);
            };
            let (found, vertices, edges) =
                if let ScanMode::ShortestPath { cost_attr } = &config.mode {
                    let col = genv.def.edge_attr_col(cost_attr).ok_or_else(|| {
                        Error::analysis(format!(
                            "graph view `{}` has no edge attribute `{cost_attr}`",
                            genv.def.name
                        ))
                    })?;
                    let edge_table = genv.edge_table;
                    let (p, search) = shortest_path_with_stats(
                        topo,
                        seed,
                        target,
                        move |g, e| {
                            edge_table
                                .get_value(g.edge_tuple(e), col)
                                .and_then(|v| v.as_double().ok())
                                .unwrap_or(f64::INFINITY)
                        },
                        &filter,
                    )?;
                    (
                        p.filter(|p| p.length() <= config.max_len),
                        search.vertices_visited,
                        search.edges_examined,
                    )
                } else {
                    targeted_bfs(topo, seed, target, config.max_len, &filter)
                };
            let mut gov = GovCounters {
                bytes: 0,
                checks: filter.gov_checks(),
            };
            if env.gov.active() {
                if let Some(p) = &found {
                    gov.bytes = path_bytes(p);
                    env.gov.charge_bytes(gov.bytes)?;
                }
                // A tripped filter pruned the search silently; re-derive
                // the governor error instead of reporting "unreachable".
                env.gov.check_now()?;
            }
            return Ok(ActiveScan::Buffered {
                iter: found.into_iter().collect::<Vec<_>>().into_iter(),
                stats: GraphCounters {
                    vertices_visited: vertices,
                    edges_expanded: edges,
                    tuple_derefs: filter.derefs(),
                },
                gov,
            });
        }

        // Resolve the physical mode (§6.3): hint > flags; Auto applies the
        // `BFS iff F < L` heuristic with the view's fan-out statistic.
        let mode = match &config.mode {
            ScanMode::Auto => {
                let f = topo.avg_fan_out();
                // `u32 → f64` is exact; a length cap beyond u32::MAX (never
                // inferable from a real query) means L is effectively
                // unbounded, so the `F < L` test always picks BFS rather
                // than comparing against a rounded `usize as f64`.
                let cap = u32::try_from(config.max_len)
                    .map(f64::from)
                    .unwrap_or(f64::INFINITY);
                if f < cap {
                    ScanMode::Bfs
                } else {
                    ScanMode::Dfs
                }
            }
            m => m.clone(),
        };

        let mut spec = TraversalSpec::new(config.min_len, config.max_len);
        if !filter.agg_preds.is_empty() {
            spec = spec.with_prefix_checks();
        }

        let mut scan = match mode {
            ScanMode::Dfs => ActiveScan::Dfs(DfsPaths::new(topo, seeds, spec, filter)),
            ScanMode::Bfs => ActiveScan::Bfs(BfsPaths::new(topo, seeds, spec, filter)),
            ScanMode::ShortestPath { cost_attr } => {
                let Some(end_expr) = &config.end else {
                    return Err(Error::plan("SHORTESTPATH scan without end anchor"));
                };
                let v = end_expr.eval(outer_row, env)?;
                if v.is_null() {
                    return Ok(ActiveScan::Empty);
                }
                let target = match topo.vertex_slot(v.as_integer()?) {
                    Ok(slot) => slot,
                    Err(_) => return Ok(ActiveScan::Empty),
                };
                let col = genv.def.edge_attr_col(&cost_attr).ok_or_else(|| {
                    Error::analysis(format!(
                        "graph view `{}` has no edge attribute `{cost_attr}`",
                        genv.def.name
                    ))
                })?;
                let edge_table = genv.edge_table;
                let cost: CostFn<'e> = Box::new(move |g, e| {
                        edge_table
                            .get_value(g.edge_tuple(e), col)
                            .and_then(|v| v.as_double().ok())
                            .unwrap_or(f64::INFINITY)
                    });
                let Some(&source) = seeds.first() else {
                    return Ok(ActiveScan::Empty);
                };
                ActiveScan::Sp {
                    iter: KShortestPaths::new(
                        topo,
                        source,
                        target,
                        config.max_len,
                        cost,
                        filter,
                    ),
                    min_len: config.min_len,
                }
            }
            // Resolved to Bfs/Dfs above; fail the query, not the process,
            // if that resolution is ever skipped.
            ScanMode::Auto => return Err(Error::plan("unresolved Auto traversal mode")),
        };

        if !config.lazy {
            // Ablation: eager materialization of all qualifying paths,
            // charged against the memory accountant as they land.
            let track = env.gov.active();
            let mut bytes = 0u64;
            let mut all = Vec::new();
            while let Some(p) = scan.next_path()? {
                if track {
                    let b = path_bytes(&p);
                    bytes += b;
                    env.gov.charge_bytes(b)?;
                }
                all.push(p);
            }
            if track {
                // Surface a mid-enumeration deadline/cancel trip now
                // rather than handing back a truncated buffer.
                env.gov.check_now()?;
            }
            let stats = scan.graph_counters();
            let gov = GovCounters {
                bytes,
                checks: scan.gov_counters().checks,
            };
            return Ok(ActiveScan::Buffered {
                iter: all.into_iter(),
                stats,
                gov,
            });
        }
        Ok(scan)
    }
}

struct PathScanOp<'e> {
    scan: ActiveScan<'e>,
    budget: &'e RowBudget,
    /// Emission-side byte accounting for in-flight (lazy serial) scans;
    /// `None` for buffered/parallel variants, whose bytes were charged
    /// during materialization.
    tracker: Option<MemTracker<'e>>,
    /// Topology layout captured at build time (the topology is locked for
    /// the whole query, so it cannot change underneath the scan).
    layout: TopologyLayout,
}

impl<'e> Op<'e> for PathScanOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.scan.next_path()? {
            None => Ok(None),
            Some(p) => {
                // The row budget is charged here, at emission, for every
                // variant — identical accounting at any worker count.
                self.budget.tick()?;
                if let Some(t) = &self.tracker {
                    t.charge(path_bytes(&p))?;
                }
                Ok(Some(vec![Value::Path(std::sync::Arc::new(p))]))
            }
        }
    }

    fn graph_stats(&self) -> Option<GraphCounters> {
        Some(self.scan.graph_counters())
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        // The tracker exists iff the governor is active; an ungoverned scan
        // performs no checks and must not annotate the plan.
        let t = self.tracker.as_ref()?;
        let mut g = self.scan.gov_counters();
        g.merge(&t.counters());
        Some(g)
    }

    fn layout(&self) -> Option<TopologyLayout> {
        Some(self.layout)
    }
}

struct PathJoinOp<'e> {
    outer: BoxOp<'e>,
    current: Option<(Row, ActiveScan<'e>)>,
    config: &'e PathScanConfig,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    /// Traversal counters accumulated from probes that already finished
    /// (the in-flight probe's counters are added on read).
    stats_done: GraphCounters,
    /// Same accumulation for per-probe governor counters.
    gov_done: GovCounters,
    tracker: Option<MemTracker<'e>>,
    /// Topology layout captured at build time (see [`PathScanOp::layout`]).
    layout: TopologyLayout,
}

impl<'e> Op<'e> for PathJoinOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some((outer_row, scan)) = &mut self.current {
                if let Some(p) = scan.next_path()? {
                    self.budget.tick()?;
                    // Buffered probes (reachability / eager ablation)
                    // charged their bytes during materialization.
                    if scan.charges_on_emission() {
                        if let Some(t) = &self.tracker {
                            t.charge(path_bytes(&p))?;
                        }
                    }
                    let mut out = Vec::with_capacity(outer_row.len() + 1);
                    out.extend_from_slice(outer_row);
                    out.push(Value::Path(std::sync::Arc::new(p)));
                    return Ok(Some(out));
                }
                self.stats_done.merge(&scan.graph_counters());
                self.gov_done.merge(&scan.gov_counters());
                self.current = None;
            }
            match self.outer.next()? {
                None => return Ok(None),
                Some(outer_row) => {
                    let scan = PathProbe::start(self.config, &outer_row, self.env)?;
                    self.current = Some((outer_row, scan));
                }
            }
        }
    }

    fn graph_stats(&self) -> Option<GraphCounters> {
        let mut total = self.stats_done;
        if let Some((_, scan)) = &self.current {
            total.merge(&scan.graph_counters());
        }
        Some(total)
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        // As for PathScanOp: tracker presence == governor active.
        let t = self.tracker.as_ref()?;
        let mut total = self.gov_done;
        if let Some((_, scan)) = &self.current {
            total.merge(&scan.gov_counters());
        }
        total.merge(&t.counters());
        Some(total)
    }

    fn layout(&self) -> Option<TopologyLayout> {
        Some(self.layout)
    }
}

/// Convenience single-pair shortest path used by maintenance/examples (not
/// part of query execution, but exercised by tests).
pub fn single_pair_shortest<'e>(
    genv: &'e GraphEnv<'e>,
    source: i64,
    target: i64,
    cost_attr: &str,
) -> Result<Option<PathData>> {
    let topo = genv.topo;
    let (Ok(s), Ok(t)) = (topo.vertex_slot(source), topo.vertex_slot(target)) else {
        return Ok(None);
    };
    let col = genv.def.edge_attr_col(cost_attr).ok_or_else(|| {
        Error::analysis(format!(
            "graph view `{}` has no edge attribute `{cost_attr}`",
            genv.def.name
        ))
    })?;
    let edge_table = genv.edge_table;
    shortest_path(
        topo,
        s,
        t,
        move |g, e| {
            edge_table
                .get_value(g.edge_tuple(e), col)
                .and_then(|v| v.as_double().ok())
                .unwrap_or(f64::INFINITY)
        },
        &grfusion_graph::NoFilter,
    )
}
