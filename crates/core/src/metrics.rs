//! Per-operator runtime metrics (`EXPLAIN ANALYZE`).
//!
//! The paper's evaluation (§6–§7) reasons about operator-level runtime
//! behaviour — traversal time, vertexes/edges visited, BFS-vs-DFS choice —
//! so the engine can instrument a query and report, per plan node, how many
//! rows it produced, how often it was pulled, how long it ran, and (for
//! graph operators) how much of the topology it actually touched.
//!
//! # Overhead discipline
//!
//! Collection is strictly opt-in. When metrics are off (every plain
//! `execute`), the executor builds the exact same operator tree as before —
//! no wrapper objects, no clock reads, no per-row bookkeeping. The only
//! always-on counters are plain (non-atomic) `u64` fields that the
//! traversal iterators already maintain for the ablation experiments
//! (`edges_examined`, `max_frontier`, ...); reading them costs nothing when
//! nobody asks. When metrics are on, each operator is wrapped in a metering
//! shim that owns a [`NodeSlot`] of `Cell<u64>` counters — the executor is
//! single-threaded, so no atomics are involved on the serial path. Parallel
//! path-scan workers accumulate their counters thread-locally and merge
//! them once at join time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use grfusion_graph::TopologyLayout;

/// Counters describing how much of a graph a traversal touched — the exact
/// quantities the paper plots (§7: vertexes visited, edges expanded, and
/// tuple-pointer dereferences into relational storage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCounters {
    /// Vertexes placed on a traversal path / frontier / closed set.
    pub vertices_visited: u64,
    /// Edges examined while expanding the traversal.
    pub edges_expanded: u64,
    /// Tuple-pointer dereferences into the vertex/edge source tables
    /// (pushed-predicate evaluation through `RowId`s, §6.2).
    pub tuple_derefs: u64,
}

impl GraphCounters {
    pub fn is_zero(&self) -> bool {
        *self == GraphCounters::default()
    }

    pub fn merge(&mut self, other: &GraphCounters) {
        self.vertices_visited += other.vertices_visited;
        self.edges_expanded += other.edges_expanded;
        self.tuple_derefs += other.tuple_derefs;
    }
}

/// Per-node resource-governor counters: how many bytes the node charged to
/// the memory accountant and how many cooperative cancellation/deadline
/// checks it performed. Only populated when the governor is active for the
/// query (`EXPLAIN ANALYZE` with a deadline, memory cap, or cancel token).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovCounters {
    /// Bytes this node charged against the memory accountant.
    pub bytes: u64,
    /// Cooperative governor checks this node performed.
    pub checks: u64,
}

impl GovCounters {
    pub fn merge(&mut self, other: &GovCounters) {
        self.bytes += other.bytes;
        self.checks += other.checks;
    }
}

/// Runtime metrics for one plan node.
#[derive(Debug, Clone)]
pub struct OpMetrics {
    /// The node's `EXPLAIN` label (e.g. `PathScan(g, Bfs, len 1..=3)`).
    pub label: String,
    /// Depth in the plan tree (root = 0); mirrors `EXPLAIN` indentation.
    pub depth: usize,
    /// Rows this node produced.
    pub rows: u64,
    /// `next()` calls the parent issued (rows + the exhausting pull).
    pub next_calls: u64,
    /// Cumulative wall time inside this node *including* its children
    /// (PostgreSQL-style inclusive timing).
    pub time_ns: u64,
    /// Graph-traversal counters; `None` for relational operators.
    pub graph: Option<GraphCounters>,
    /// Resource-governor counters; `None` when the governor was inactive.
    pub gov: Option<GovCounters>,
    /// Topology layout the operator traversed (sealed CSR / delta overlay /
    /// plain adjacency); `None` for relational operators.
    pub layout: Option<TopologyLayout>,
    /// Configured batch size when this operator ran batch-at-a-time;
    /// `None` on the row-at-a-time path.
    pub batch: Option<u64>,
    /// Optimizer cardinality estimate for this node (rows), attached after
    /// execution when the cost-based optimizer planned the query; `None`
    /// on the rule-based path.
    pub rows_est: Option<u64>,
}

/// Per-worker counters of a morsel-parallel path scan (fan-out balance).
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// Worker index within the pool.
    pub worker: usize,
    /// Morsels this worker claimed and completed.
    pub morsels: u64,
    /// Paths this worker enumerated.
    pub paths: u64,
    /// Traversal work done by this worker.
    pub counters: GraphCounters,
}

/// Structured metrics for one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Plan nodes in pre-order (same order as `EXPLAIN` lines).
    pub nodes: Vec<OpMetrics>,
    /// Morsel-worker counters, when the query ran a parallel path scan.
    pub workers: Vec<WorkerMetrics>,
    /// Number of the published epoch this query read, when it ran against a
    /// pinned epoch snapshot rather than the live locked state. `None` on
    /// the locked path (epochs disabled, or a transaction was open).
    pub epoch: Option<u64>,
}

impl QueryMetrics {
    /// First node whose label starts with `prefix` (convenience for tests
    /// and the bench harness: `metrics.node("PathScan")`).
    pub fn node(&self, prefix: &str) -> Option<&OpMetrics> {
        self.nodes.iter().find(|n| n.label.starts_with(prefix))
    }

    /// Attach per-node optimizer cardinality estimates (pre-order, as
    /// produced by `cost::estimate`). A length mismatch — e.g. batch
    /// interception registered a different operator tree — attaches
    /// nothing: actual-vs-estimate is an annotation, never a panic, and a
    /// node without an estimate simply omits the suffix (no `rows_est=?`).
    pub fn attach_estimates(&mut self, estimates: &[crate::cost::NodeEstimate]) {
        if self.nodes.len() != estimates.len() {
            return;
        }
        for (n, e) in self.nodes.iter_mut().zip(estimates) {
            n.rows_est = Some(if e.rows.is_finite() && e.rows < u64::MAX as f64 { // cast-ok: range guard
                e.rows.round().max(0.0) as u64 // cast-ok: clamped non-negative finite
            } else {
                u64::MAX
            });
        }
    }

    /// Sum of graph counters across all nodes.
    pub fn graph_totals(&self) -> GraphCounters {
        let mut total = GraphCounters::default();
        for n in &self.nodes {
            if let Some(g) = &n.graph {
                total.merge(g);
            }
        }
        total
    }

    /// Render the annotated plan tree (the `EXPLAIN ANALYZE` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(n) = self.epoch {
            out.push_str(&format!("epoch={n}\n"));
        }
        for n in &self.nodes {
            for _ in 0..n.depth {
                out.push_str("  ");
            }
            out.push_str(&n.label);
            out.push_str(&format!(
                " (rows={} nexts={} time={}us)",
                n.rows,
                n.next_calls,
                format_us(n.time_ns)
            ));
            if let Some(g) = &n.graph {
                out.push_str(&format!(
                    " (vertices={} edges={} derefs={})",
                    g.vertices_visited, g.edges_expanded, g.tuple_derefs
                ));
            }
            if let Some(l) = &n.layout {
                out.push_str(&format!(" (layout={l})"));
            }
            if let Some(b) = &n.batch {
                out.push_str(&format!(" (layout=batch({b}))"));
            }
            if let Some(g) = &n.gov {
                out.push_str(&format!(" (bytes={} checks={})", g.bytes, g.checks));
            }
            if let Some(est) = n.rows_est {
                out.push_str(&format!(" (rows_est={est})"));
            }
            out.push('\n');
        }
        for w in &self.workers {
            out.push_str(&format!(
                "worker {}: morsels={} paths={} vertices={} edges={} derefs={}\n",
                w.worker,
                w.morsels,
                w.paths,
                w.counters.vertices_visited,
                w.counters.edges_expanded,
                w.counters.tuple_derefs
            ));
        }
        out
    }
}

fn format_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// Mutable per-node counter slot shared between the metering shim (which
/// bumps it) and the sink (which reads it at the end). `Cell` suffices:
/// the volcano executor is single-threaded.
#[derive(Debug)]
pub struct NodeSlot {
    label: String,
    depth: usize,
    rows: Cell<u64>,
    next_calls: Cell<u64>,
    time_ns: Cell<u64>,
    graph: Cell<Option<GraphCounters>>,
    gov: Cell<Option<GovCounters>>,
    layout: Cell<Option<TopologyLayout>>,
    batch: Cell<Option<u64>>,
}

impl NodeSlot {
    #[inline]
    pub(crate) fn record_next(&self, elapsed_ns: u64, produced: bool) {
        self.next_calls.set(self.next_calls.get() + 1);
        self.time_ns.set(self.time_ns.get() + elapsed_ns);
        if produced {
            self.rows.set(self.rows.get() + 1);
        }
    }

    /// Batch-mode twin of [`NodeSlot::record_next`]: one `next_batch()`
    /// call that produced `rows` rows (`None` = exhausted or errored).
    #[inline]
    pub(crate) fn record_batch(&self, elapsed_ns: u64, rows: Option<u64>) {
        self.next_calls.set(self.next_calls.get() + 1);
        self.time_ns.set(self.time_ns.get() + elapsed_ns);
        if let Some(n) = rows {
            self.rows.set(self.rows.get() + n);
        }
    }

    /// Record the configured batch size for an operator running
    /// batch-at-a-time (stable for the whole query, so any write wins).
    #[inline]
    pub(crate) fn set_batch(&self, size: u64) {
        self.batch.set(Some(size));
    }

    /// Overwrite the node's graph counters with the operator's cumulative
    /// totals (counters are monotonic, so the last write wins).
    #[inline]
    pub(crate) fn set_graph(&self, g: GraphCounters) {
        self.graph.set(Some(g));
    }

    /// Overwrite the node's governor counters with cumulative totals (same
    /// last-write-wins contract as [`NodeSlot::set_graph`]).
    #[inline]
    pub(crate) fn set_gov(&self, g: GovCounters) {
        self.gov.set(Some(g));
    }

    /// Record the topology layout the operator traversed (stable for the
    /// whole query — the topology lock is held — so any write wins).
    #[inline]
    pub(crate) fn set_layout(&self, l: TopologyLayout) {
        self.layout.set(Some(l));
    }

    fn snapshot(&self) -> OpMetrics {
        OpMetrics {
            label: self.label.clone(),
            depth: self.depth,
            rows: self.rows.get(),
            next_calls: self.next_calls.get(),
            time_ns: self.time_ns.get(),
            graph: self.graph.get(),
            gov: self.gov.get(),
            layout: self.layout.get(),
            batch: self.batch.get(),
            rows_est: None,
        }
    }
}

/// Collection context for one instrumented execution. Created by
/// `execute_plan_with_metrics`; plan nodes register themselves in build
/// (pre-)order so the finished node list lines up with `EXPLAIN` output.
#[derive(Debug, Default)]
pub struct MetricsSink {
    nodes: RefCell<Vec<Rc<NodeSlot>>>,
    workers: RefCell<Vec<WorkerMetrics>>,
}

impl MetricsSink {
    pub(crate) fn new() -> Self {
        MetricsSink::default()
    }

    pub(crate) fn register(&self, label: String, depth: usize) -> Rc<NodeSlot> {
        let slot = Rc::new(NodeSlot {
            label,
            depth,
            rows: Cell::new(0),
            next_calls: Cell::new(0),
            time_ns: Cell::new(0),
            graph: Cell::new(None),
            gov: Cell::new(None),
            layout: Cell::new(None),
            batch: Cell::new(None),
        });
        self.nodes.borrow_mut().push(slot.clone());
        slot
    }

    pub(crate) fn record_workers(&self, workers: Vec<WorkerMetrics>) {
        self.workers.borrow_mut().extend(workers);
    }

    pub(crate) fn finish(&self) -> QueryMetrics {
        QueryMetrics {
            nodes: self.nodes.borrow().iter().map(|s| s.snapshot()).collect(),
            workers: self.workers.borrow().clone(),
            epoch: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_snapshots_in_registration_order() {
        let sink = MetricsSink::new();
        let a = sink.register("Project(1 cols)".into(), 0);
        let b = sink.register("TableScan(t)".into(), 1);
        a.record_next(1_500, true);
        a.record_next(500, false);
        b.record_next(1_000, true);
        b.set_graph(GraphCounters {
            vertices_visited: 3,
            edges_expanded: 5,
            tuple_derefs: 2,
        });
        b.set_gov(GovCounters {
            bytes: 128,
            checks: 4,
        });
        b.set_layout(TopologyLayout::Delta(2));
        let m = sink.finish();
        assert_eq!(m.nodes.len(), 2);
        assert_eq!(m.nodes[0].label, "Project(1 cols)");
        assert_eq!(m.nodes[0].rows, 1);
        assert_eq!(m.nodes[0].next_calls, 2);
        assert_eq!(m.nodes[0].time_ns, 2_000);
        assert!(m.nodes[0].graph.is_none());
        assert_eq!(m.nodes[1].graph.unwrap().edges_expanded, 5);
        assert_eq!(m.node("TableScan").unwrap().rows, 1);
        assert_eq!(m.graph_totals().vertices_visited, 3);
        let text = m.render();
        assert!(text.contains("Project(1 cols) (rows=1 nexts=2"), "{text}");
        assert!(text.contains("  TableScan(t)"), "{text}");
        assert!(text.contains("(vertices=3 edges=5 derefs=2)"), "{text}");
        assert!(m.nodes[0].gov.is_none());
        assert_eq!(m.nodes[1].gov.unwrap_or_default().bytes, 128);
        assert!(text.contains("(bytes=128 checks=4)"), "{text}");
        assert!(m.nodes[0].layout.is_none());
        assert_eq!(m.nodes[1].layout, Some(TopologyLayout::Delta(2)));
        assert!(text.contains("(layout=delta(2))"), "{text}");
    }

    #[test]
    fn batch_counters_render() {
        let sink = MetricsSink::new();
        let a = sink.register("TableScan(t)".into(), 0);
        a.record_batch(2_000, Some(3));
        a.record_batch(1_000, None);
        a.set_batch(1024);
        let m = sink.finish();
        assert_eq!(m.nodes[0].rows, 3);
        assert_eq!(m.nodes[0].next_calls, 2);
        assert_eq!(m.nodes[0].time_ns, 3_000);
        assert_eq!(m.nodes[0].batch, Some(1024));
        assert!(m.render().contains("(layout=batch(1024))"), "{}", m.render());
    }
}
