//! Physical query plans.
//!
//! Plans are owned trees (no borrows into storage) so they can be built
//! once and executed against freshly acquired read guards. The shape
//! follows the paper's cross-model QEPs (EDBT 2018 §5.2, Figures 5–6):
//! graph operators sit at the leaf level, relational operators consume
//! their output, and a relational outer can probe a path scan
//! ([`PlanNode::PathJoin`], the Figure 6 shape).

use std::sync::Arc;

use grfusion_common::Schema;
use grfusion_sql::IndexEnd;

use crate::expr::{AggFunc, CmpOp, PathTarget, PhysExpr};

/// A physical plan node. Every node knows its output schema.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Sequential scan of a relational table.
    TableScan {
        /// Lowercase table name.
        table: String,
        schema: Arc<Schema>,
        /// Pushed single-binding predicate (compiled against the table's
        /// own schema).
        filter: Option<PhysExpr>,
    },
    /// Point lookup through a hash index (`IndexScan` in the paper's
    /// Figure 6 discussion).
    IndexLookup {
        table: String,
        schema: Arc<Schema>,
        column: usize,
        /// Constant key expression.
        key: PhysExpr,
        /// Residual pushed filter.
        filter: Option<PhysExpr>,
    },
    /// `gv.VERTEXES` scan (paper §5.1.1).
    VertexScan {
        graph: String,
        schema: Arc<Schema>,
        filter: Option<PhysExpr>,
    },
    /// `gv.EDGES` scan.
    EdgeScan {
        graph: String,
        schema: Arc<Schema>,
        filter: Option<PhysExpr>,
    },
    /// Standalone `gv.PATHS` scan (seeds are constants or all vertexes).
    PathScan {
        config: PathScanConfig,
        schema: Arc<Schema>,
    },
    /// Probe-style path scan: for each outer row, traverse from the start
    /// vertex computed by `config.start` (Figure 6's join of a relational
    /// outer with a traversal inner). Output = outer row ⊕ path column.
    PathJoin {
        outer: Box<PlanNode>,
        config: PathScanConfig,
        schema: Arc<Schema>,
    },
    /// Tuple-at-a-time filter.
    Filter {
        input: Box<PlanNode>,
        predicate: PhysExpr,
        schema: Arc<Schema>,
    },
    /// Nested-loop join with optional condition (inner side re-scanned).
    NestedLoopJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        condition: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    /// Index nested-loop join: for each outer row, probe a hash index on
    /// the inner table with `key` (compiled against the outer schema) and
    /// emit outer ⊕ inner. This is the join shape SQLGraph-style
    /// relational traversal relies on (one indexed self-join per hop).
    IndexJoin {
        outer: Box<PlanNode>,
        table: String,
        column: usize,
        key: PhysExpr,
        /// Filter over the inner row alone (compiled at offset 0).
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    /// Projection.
    Project {
        input: Box<PlanNode>,
        exprs: Vec<PhysExpr>,
        schema: Arc<Schema>,
    },
    /// Hash aggregation. Output = group columns then aggregate columns.
    Aggregate {
        input: Box<PlanNode>,
        group_exprs: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        schema: Arc<Schema>,
    },
    /// Full sort.
    Sort {
        input: Box<PlanNode>,
        keys: Vec<(PhysExpr, bool)>,
        schema: Arc<Schema>,
    },
    /// Row-count limit.
    Limit {
        input: Box<PlanNode>,
        limit: u64,
        schema: Arc<Schema>,
    },
    /// Streaming duplicate elimination (`SELECT DISTINCT`).
    Distinct {
        input: Box<PlanNode>,
        schema: Arc<Schema>,
    },
}

impl PlanNode {
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            PlanNode::TableScan { schema, .. }
            | PlanNode::IndexLookup { schema, .. }
            | PlanNode::VertexScan { schema, .. }
            | PlanNode::EdgeScan { schema, .. }
            | PlanNode::PathScan { schema, .. }
            | PlanNode::PathJoin { schema, .. }
            | PlanNode::Filter { schema, .. }
            | PlanNode::NestedLoopJoin { schema, .. }
            | PlanNode::IndexJoin { schema, .. }
            | PlanNode::Project { schema, .. }
            | PlanNode::Aggregate { schema, .. }
            | PlanNode::Sort { schema, .. }
            | PlanNode::Limit { schema, .. }
            | PlanNode::Distinct { schema, .. } => schema,
        }
    }

    /// Pretty-print the plan tree (EXPLAIN-style, for docs and debugging).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// The node's one-line `EXPLAIN` label (no children, no newline).
    /// `EXPLAIN ANALYZE` annotates the same labels with runtime counters,
    /// so the two outputs always line up.
    pub fn node_label(&self) -> String {
        match self {
            PlanNode::TableScan { table, filter, .. } => format!(
                "TableScan({table}{})",
                if filter.is_some() { ", filtered" } else { "" }
            ),
            PlanNode::IndexLookup { table, .. } => format!("IndexLookup({table})"),
            PlanNode::VertexScan { graph, .. } => format!("VertexScan({graph})"),
            PlanNode::EdgeScan { graph, .. } => format!("EdgeScan({graph})"),
            PlanNode::PathScan { config, .. } => format!(
                "PathScan({}, {:?}, len {}..={}{})",
                config.graph,
                config.mode,
                config.min_len,
                config.max_len,
                if config.reachability { ", reachability" } else { "" }
            ),
            PlanNode::PathJoin { config, .. } => format!(
                "PathJoin({}, {:?}, len {}..={}{})",
                config.graph,
                config.mode,
                config.min_len,
                config.max_len,
                if config.reachability { ", reachability" } else { "" }
            ),
            PlanNode::Filter { .. } => "Filter".to_string(),
            PlanNode::NestedLoopJoin { condition, .. } => format!(
                "NestedLoopJoin{}",
                if condition.is_some() { "(cond)" } else { "(cross)" }
            ),
            PlanNode::IndexJoin { table, .. } => format!("IndexJoin({table})"),
            PlanNode::Project { exprs, .. } => format!("Project({} cols)", exprs.len()),
            PlanNode::Aggregate {
                group_exprs, aggs, ..
            } => format!(
                "Aggregate({} groups, {} aggs)",
                group_exprs.len(),
                aggs.len()
            ),
            PlanNode::Sort { keys, .. } => format!("Sort({} keys)", keys.len()),
            PlanNode::Limit { limit, .. } => format!("Limit({limit})"),
            PlanNode::Distinct { .. } => "Distinct".to_string(),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.node_label());
        out.push('\n');
        match self {
            PlanNode::TableScan { .. }
            | PlanNode::IndexLookup { .. }
            | PlanNode::VertexScan { .. }
            | PlanNode::EdgeScan { .. }
            | PlanNode::PathScan { .. } => {}
            PlanNode::PathJoin { outer, .. } | PlanNode::IndexJoin { outer, .. } => {
                outer.explain_into(out, depth + 1);
            }
            PlanNode::NestedLoopJoin { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Distinct { input, .. } => {
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// One group-aggregate column.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Argument expression; `None` for `COUNT(*)`.
    pub arg: Option<PhysExpr>,
}

/// Physical traversal mode of a path scan (§6.3's logical→physical
/// mapping).
#[derive(Debug, Clone, PartialEq)]
pub enum ScanMode {
    /// Decide BFS vs. DFS at execution from the graph's average fan-out
    /// statistic (`BFS iff F < L`).
    Auto,
    Dfs,
    Bfs,
    /// Dijkstra-based shortest-path scan over the named edge cost
    /// attribute (requires start and end anchors).
    ShortestPath { cost_attr: String },
}

/// Where a path scan's start vertexes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum StartSource {
    /// No anchor: every vertex of the view seeds the traversal (§5.1.2).
    AllVertexes,
    /// Anchored to a constant expression (`PS.StartVertex.Id = 3`).
    Constant(PhysExpr),
    /// Probed from the outer row of a [`PlanNode::PathJoin`]; the
    /// expression is compiled against the outer schema.
    Probe(PhysExpr),
}

/// A predicate pushed into the traversal (§6.2). `rhs` expressions are
/// compiled against the *outer* schema (empty for standalone scans) and
/// bound to concrete values when the scan starts.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedPred {
    pub target: PathTarget,
    pub start: u64,
    pub end: IndexEnd,
    /// Lowercase attribute name (edge/vertex attribute, or the specials
    /// `id`, `fanin`, `fanout`; `startvertex`/`endvertex` are not pushable
    /// because hop direction is only known per path).
    pub attr: String,
    pub test: PushedTest,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PushedTest {
    Cmp { op: CmpOp, rhs: PhysExpr },
    In { list: Vec<PhysExpr>, negated: bool },
}

/// A running path-aggregate bound pushed into traversal (§6.2):
/// `SUM(PS.Edges.attr) < rhs` prunes prefixes once exceeded.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedAggPred {
    pub target: PathTarget,
    pub attr: String,
    /// `Lt` or `LtEq` only (monotone pruning for non-negative attributes).
    pub op: CmpOp,
    pub rhs: PhysExpr,
}

/// Everything a path scan needs at execution time.
#[derive(Debug, Clone)]
pub struct PathScanConfig {
    /// Lowercase graph-view name.
    pub graph: String,
    pub mode: ScanMode,
    /// Inferred traversal window (§6.1).
    pub min_len: usize,
    pub max_len: usize,
    pub start: StartSource,
    /// Target anchor (`PS.EndVertex.Id = ...`) — required by
    /// `ShortestPath`, unused by DFS/BFS (kept residual there).
    pub end: Option<PhysExpr>,
    /// Pushed traversal predicates (§6.2). Empty when pushdown is off.
    pub edge_preds: Vec<PushedPred>,
    pub vertex_preds: Vec<PushedPred>,
    pub agg_preds: Vec<PushedAggPred>,
    /// When false (ablation), the scan materializes all qualifying paths
    /// eagerly before emitting the first.
    pub lazy: bool,
    /// Reachability fast path: the planner proved that the query needs at
    /// most one path per probe (`LIMIT 1`), with pinned start/end vertexes,
    /// a max-only length window, and only uniform `[0..*]` edge/vertex
    /// predicates — so the scan may run a visited-set BFS instead of
    /// enumerating simple paths (how the paper's BFScan answers Listing 3
    /// queries at depth 20 in milliseconds, §7.2). Residual predicates are
    /// still applied above the scan, so this is semantics-preserving.
    pub reachability: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::{Column, DataType};

    fn leaf() -> PlanNode {
        PlanNode::TableScan {
            table: "t".into(),
            schema: Schema::new(vec![Column::new("a", DataType::Integer)]).shared(),
            filter: None,
        }
    }

    #[test]
    fn schema_accessor_and_explain() {
        let plan = PlanNode::Limit {
            schema: leaf().schema().clone(),
            input: Box::new(PlanNode::Filter {
                schema: leaf().schema().clone(),
                predicate: PhysExpr::Literal(grfusion_common::Value::Boolean(true)),
                input: Box::new(leaf()),
            }),
            limit: 3,
        };
        assert_eq!(plan.schema().len(), 1);
        let text = plan.explain();
        assert!(text.contains("Limit(3)"));
        assert!(text.contains("Filter"));
        assert!(text.contains("TableScan(t)"));
        // indentation reflects depth
        assert!(text.contains("\n  Filter"));
    }
}
