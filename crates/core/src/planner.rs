//! Query planning: AST → physical plan.
//!
//! The planner implements the paper's conceptual evaluation order (EDBT
//! 2018 §5.3) — the relational FROM-sources are joined first, then each
//! `gv.PATHS` source is attached, probed by the relational block when a
//! start-vertex anchor references it (Figure 6) — plus the §6 optimizer:
//!
//! * **Path-length inference** (§6.1): `PS.Length` predicates and indexed
//!   references (`PS.Edges[5..*]` ⇒ length ≥ 6) become the traversal's
//!   `[min, max]` window.
//! * **Predicate pushdown** (§6.2): single-path edge/vertex predicates and
//!   bounded path aggregates are copied into the scan's traversal filters.
//!   Pushed predicates are *also* kept in the residual filter, so turning
//!   pushdown off (ablation) never changes results.
//! * **Logical→physical mapping** (§6.3): `HINT(...)` picks
//!   DFS/BFS/SPScan; otherwise `ScanMode::Auto` defers the `BFS iff F < L`
//!   decision to execution time where the fan-out statistic lives.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use grfusion_common::{Column, DataType, Error, Result, Schema};
use grfusion_sql::{
    BinaryOp, Expr, FromItem, IndexEnd, PathHint, RefPart, Select, SelectItem,
};

use crate::config::OptimizerFlags;
use crate::expr::{
    compile, AggFunc, BindingKind, CmpOp, GraphMeta, Namespace, PathTarget, PhysExpr,
};
use crate::plan::{
    AggSpec, PathScanConfig, PlanNode, PushedAggPred, PushedPred, PushedTest, ScanMode,
    StartSource,
};

/// Catalog information the planner needs (immutable snapshot).
pub struct PlannerCtx {
    /// Lowercase table name → schema.
    pub tables: HashMap<String, Arc<Schema>>,
    /// Lowercase table name → columns with a hash index (for IndexLookup).
    pub hash_indexed: HashMap<String, Vec<usize>>,
    /// Lowercase graph-view name → metadata.
    pub graphs: Arc<HashMap<String, GraphMeta>>,
    /// Per-graph scan schemas.
    pub vertex_scan_schemas: HashMap<String, Arc<Schema>>,
    pub edge_scan_schemas: HashMap<String, Arc<Schema>>,
}

/// Plan a SELECT statement.
pub fn plan_select(
    select: &Select,
    ctx: &PlannerCtx,
    flags: &OptimizerFlags,
) -> Result<PlanNode> {
    let plan = Planner {
        ctx,
        flags,
        ns: Namespace::new(ctx.graphs.clone()),
    }
    .plan(select)?;
    // Static QEP verification: re-derive every node's schema bottom-up and
    // check graph-operator invariants before anything executes.
    crate::analyze::verify_plan(&plan, &ctx.graphs, &ctx.tables)?;
    Ok(plan)
}

struct Planner<'a> {
    ctx: &'a PlannerCtx,
    flags: &'a OptimizerFlags,
    ns: Namespace,
}

impl<'a> Planner<'a> {
    fn plan(mut self, select: &Select) -> Result<PlanNode> {
        if select.from.is_empty() {
            return Err(Error::analysis("FROM clause is required"));
        }
        // §5.3: relational-model sources first, graph path sources after.
        let mut rel_items = Vec::new();
        let mut path_items = Vec::new();
        for item in &select.from {
            match item {
                FromItem::GraphPaths { .. } => path_items.push(item),
                _ => rel_items.push(item),
            }
        }

        let conjuncts: Vec<Expr> = select
            .selection
            .clone()
            .map(|e| e.conjuncts())
            .unwrap_or_default();
        let mut consumed = vec![false; conjuncts.len()];

        // ---- relational block --------------------------------------------------
        let mut plan: Option<PlanNode> = None;
        for item in rel_items {
            let (node, binding_name, kind, schema) = self.relational_leaf(item)?;
            // Push single-binding conjuncts onto the leaf.
            let node = self.push_leaf_filters(
                node,
                &binding_name,
                &kind,
                &schema,
                &conjuncts,
                &mut consumed,
            )?;
            plan = Some(match plan {
                None => {
                    self.ns.push(&binding_name, kind, schema)?;
                    node
                }
                Some(left) => {
                    // Prefer an index nested-loop join when an unconsumed
                    // equality correlates a hash-indexed column of the new
                    // table with the outer bindings (the join shape that
                    // makes SQLGraph-style hop-joins viable).
                    let ij = if matches!(node, PlanNode::TableScan { .. }) {
                        self.find_index_join(
                            &binding_name,
                            &kind,
                            &schema,
                            &conjuncts,
                            &mut consumed,
                        )?
                    } else {
                        None
                    };
                    self.ns.push(&binding_name, kind, schema)?;
                    let out_schema =
                        Arc::new(Schema::clone(left.schema()).join(node.schema()));
                    match (ij, node) {
                        (Some((column, key)), PlanNode::TableScan { table, filter, .. }) => {
                            PlanNode::IndexJoin {
                                outer: Box::new(left),
                                table,
                                column,
                                key,
                                filter,
                                schema: out_schema,
                            }
                        }
                        (_, node) => PlanNode::NestedLoopJoin {
                            left: Box::new(left),
                            right: Box::new(node),
                            condition: None, // conditions live in the residual filter
                            schema: out_schema,
                        },
                    }
                }
            });
        }

        // ---- path sources ---------------------------------------------------------
        for item in path_items {
            let FromItem::GraphPaths { graph, alias: _, hint } = item else {
                return Err(Error::plan("non-path source in the path-planning list"));
            };
            let binding_name = item.binding().to_ascii_lowercase();
            let graph_lower = graph.to_ascii_lowercase();
            if !self.ctx.graphs.contains_key(&graph_lower) {
                return Err(Error::analysis(format!("unknown graph view `{graph}`")));
            }
            let config = self.path_scan_config(
                &graph_lower,
                &binding_name,
                hint.as_ref(),
                &conjuncts,
                select.limit == Some(1),
            )?;
            let path_schema: Arc<Schema> = Schema::new(vec![Column::new(
                binding_name.clone(),
                DataType::Path,
            )])
            .shared();

            plan = Some(match (plan, &config.start) {
                (Some(outer), StartSource::Probe(_)) => {
                    let schema =
                        Arc::new(Schema::clone(outer.schema()).join(&path_schema));
                    PlanNode::PathJoin {
                        outer: Box::new(outer),
                        config,
                        schema,
                    }
                }
                (Some(outer), _) => {
                    let scan = PlanNode::PathScan {
                        config,
                        schema: path_schema.clone(),
                    };
                    let schema =
                        Arc::new(Schema::clone(outer.schema()).join(&path_schema));
                    PlanNode::NestedLoopJoin {
                        left: Box::new(outer),
                        right: Box::new(scan),
                        condition: None,
                        schema,
                    }
                }
                (None, _) => {
                    // A probe with no outer can only have resolved against
                    // constants; path_scan_config guarantees that.
                    PlanNode::PathScan {
                        config,
                        schema: path_schema.clone(),
                    }
                }
            });
            self.ns
                .push(&binding_name, BindingKind::Paths(graph_lower), path_schema)?;
        }

        let Some(mut plan) = plan else {
            return Err(Error::analysis("query requires at least one FROM source"));
        };

        // ---- static typecheck -------------------------------------------------------
        // With the namespace fully populated, type every expression of the
        // statement (3VL-aware) so ill-typed queries are rejected here with
        // source spans instead of failing mid-execution — or worse,
        // silently evaluating to UNKNOWN (e.g. a PATH compared to an
        // INTEGER).
        crate::analyze::check_select(select, &self.ns)?;

        // ---- residual predicate -----------------------------------------------------
        let residual: Vec<&Expr> = conjuncts
            .iter()
            .zip(&consumed)
            .filter(|(_, c)| !**c)
            .map(|(e, _)| e)
            .collect();
        if !residual.is_empty() {
            let mut pred: Option<PhysExpr> = None;
            for e in residual {
                let compiled = compile(e, &self.ns)?;
                pred = Some(match pred {
                    None => compiled,
                    Some(p) => PhysExpr::And(Box::new(p), Box::new(compiled)),
                });
            }
            if let Some(predicate) = pred {
                plan = PlanNode::Filter {
                    schema: plan.schema().clone(),
                    predicate,
                    input: Box::new(plan),
                };
            }
        }

        // ---- aggregation ---------------------------------------------------------------
        let agg_calls = collect_aggregates(select)?;
        let grouped = !select.group_by.is_empty() || !agg_calls.is_empty();
        let mut post_agg_schema: Option<Arc<Schema>> = None;
        if grouped {
            let mut group_exprs = Vec::new();
            let mut cols = Vec::new();
            for (i, g) in select.group_by.iter().enumerate() {
                let pe = compile(g, &self.ns)?;
                cols.push(Column::new(format!("_g{i}"), pe.static_type()));
                group_exprs.push(pe);
            }
            let mut aggs = Vec::new();
            for (j, call) in agg_calls.iter().enumerate() {
                let spec = self.compile_agg_call(call)?;
                let ty = match spec.func {
                    AggFunc::Count => DataType::Integer,
                    AggFunc::Avg => DataType::Double,
                    _ => spec
                        .arg
                        .as_ref()
                        .map(|e| e.static_type())
                        .unwrap_or(DataType::Integer),
                };
                cols.push(Column::new(format!("_a{j}"), ty));
                aggs.push(spec);
            }
            let schema = Schema::new(cols).shared();
            plan = PlanNode::Aggregate {
                input: Box::new(plan),
                group_exprs,
                aggs,
                schema: schema.clone(),
            };
            post_agg_schema = Some(schema);

            if let Some(having) = &select.having {
                let agg_schema = post_agg_schema
                    .as_ref()
                    .ok_or_else(|| Error::plan("HAVING planned without an aggregation schema"))?;
                let pred = rewrite_post_agg(
                    having,
                    &select.group_by,
                    &agg_calls,
                    agg_schema,
                    &self.ns,
                )?;
                plan = PlanNode::Filter {
                    schema: plan.schema().clone(),
                    predicate: pred,
                    input: Box::new(plan),
                };
            }
        } else if select.having.is_some() {
            return Err(Error::analysis("HAVING requires GROUP BY or aggregates"));
        }

        // ---- order by ---------------------------------------------------------------------
        if !select.order_by.is_empty() {
            let mut keys = Vec::new();
            for (e, asc) in &select.order_by {
                let pe = if let Some(schema) = &post_agg_schema {
                    rewrite_post_agg(e, &select.group_by, &agg_calls, schema, &self.ns)?
                } else {
                    compile(e, &self.ns)?
                };
                keys.push((pe, *asc));
            }
            plan = PlanNode::Sort {
                schema: plan.schema().clone(),
                input: Box::new(plan),
                keys,
            };
        }

        // ---- projection ----------------------------------------------------------------------
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => {
                    if grouped {
                        return Err(Error::analysis("SELECT * cannot be combined with GROUP BY"));
                    }
                    let combined = self.ns.combined_schema();
                    for (i, c) in combined.columns().iter().enumerate() {
                        exprs.push(PhysExpr::Column {
                            index: i,
                            ty: c.data_type,
                        });
                        cols.push(c.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let pe = if let Some(schema) = &post_agg_schema {
                        rewrite_post_agg(expr, &select.group_by, &agg_calls, schema, &self.ns)?
                    } else {
                        compile(expr, &self.ns)?
                    };
                    let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                    cols.push(Column::new(name, pe.static_type()));
                    exprs.push(pe);
                }
            }
        }
        let schema = Schema::new(cols).shared();
        plan = PlanNode::Project {
            input: Box::new(plan),
            exprs,
            schema: schema.clone(),
        };

        // ---- distinct ---------------------------------------------------------------------------
        if select.distinct {
            plan = PlanNode::Distinct {
                schema: schema.clone(),
                input: Box::new(plan),
            };
        }

        // ---- limit -----------------------------------------------------------------------------
        if let Some(n) = select.limit {
            plan = PlanNode::Limit {
                schema,
                input: Box::new(plan),
                limit: n,
            };
        }
        Ok(plan)
    }

    /// Build a leaf node for a relational-model FROM item.
    fn relational_leaf(
        &self,
        item: &FromItem,
    ) -> Result<(PlanNode, String, BindingKind, Arc<Schema>)> {
        match item {
            FromItem::Table { name, .. } => {
                let lower = name.to_ascii_lowercase();
                let schema = self
                    .ctx
                    .tables
                    .get(&lower)
                    .cloned()
                    .ok_or_else(|| Error::analysis(format!("unknown table `{name}`")))?;
                Ok((
                    PlanNode::TableScan {
                        table: lower.clone(),
                        schema: schema.clone(),
                        filter: None,
                    },
                    item.binding().to_ascii_lowercase(),
                    BindingKind::Table(lower),
                    schema,
                ))
            }
            FromItem::GraphVertexes { graph, .. } => {
                let lower = graph.to_ascii_lowercase();
                let schema = self
                    .ctx
                    .vertex_scan_schemas
                    .get(&lower)
                    .cloned()
                    .ok_or_else(|| Error::analysis(format!("unknown graph view `{graph}`")))?;
                Ok((
                    PlanNode::VertexScan {
                        graph: lower.clone(),
                        schema: schema.clone(),
                        filter: None,
                    },
                    item.binding().to_ascii_lowercase(),
                    BindingKind::Vertexes(lower),
                    schema,
                ))
            }
            FromItem::GraphEdges { graph, .. } => {
                let lower = graph.to_ascii_lowercase();
                let schema = self
                    .ctx
                    .edge_scan_schemas
                    .get(&lower)
                    .cloned()
                    .ok_or_else(|| Error::analysis(format!("unknown graph view `{graph}`")))?;
                Ok((
                    PlanNode::EdgeScan {
                        graph: lower.clone(),
                        schema: schema.clone(),
                        filter: None,
                    },
                    item.binding().to_ascii_lowercase(),
                    BindingKind::Edges(lower),
                    schema,
                ))
            }
            FromItem::GraphPaths { .. } => Err(Error::plan(
                "path sources are planned after the relational block",
            )),
        }
    }

    /// Push conjuncts that reference only `binding_name` down to a leaf.
    /// Consumed conjuncts are exact, so they are removed from the residual.
    /// Upgrades a table scan to an index lookup when a pushed conjunct is a
    /// constant equality on a hash-indexed column.
    fn push_leaf_filters(
        &self,
        node: PlanNode,
        binding_name: &str,
        kind: &BindingKind,
        schema: &Arc<Schema>,
        conjuncts: &[Expr],
        consumed: &mut [bool],
    ) -> Result<PlanNode> {
        // Compile against a solo namespace (the leaf's own columns).
        let mut solo = Namespace::new(self.ctx.graphs.clone());
        solo.push(binding_name, kind.clone(), schema.clone())?;

        let mut filter: Option<PhysExpr> = None;
        let mut index_key: Option<(usize, PhysExpr)> = None;
        for (i, c) in conjuncts.iter().enumerate() {
            if consumed[i] {
                continue;
            }
            let Ok(refs) = referenced_bindings(c, &solo) else {
                continue; // references other bindings
            };
            if !(refs.len() == 1 && refs.contains(binding_name)) {
                continue;
            }
            let Ok(pe) = compile(c, &solo) else { continue };
            consumed[i] = true;
            // Index lookup candidate: `col = const` on a hash-indexed column.
            if index_key.is_none() {
                if let BindingKind::Table(table) = kind {
                    if let PhysExpr::Cmp { op: CmpOp::Eq, left, right } = &pe {
                        let cand = match (left.as_ref(), right.as_ref()) {
                            (PhysExpr::Column { index, .. }, k) if k.is_constant() => {
                                Some((*index, k.clone()))
                            }
                            (k, PhysExpr::Column { index, .. }) if k.is_constant() => {
                                Some((*index, k.clone()))
                            }
                            _ => None,
                        };
                        if let Some((col, key)) = cand {
                            let indexed = self
                                .ctx
                                .hash_indexed
                                .get(table)
                                .is_some_and(|cols| cols.contains(&col));
                            if indexed {
                                index_key = Some((col, key));
                                continue; // consumed by the index, not the filter
                            }
                        }
                    }
                }
            }
            filter = Some(match filter {
                None => pe,
                Some(f) => PhysExpr::And(Box::new(f), Box::new(pe)),
            });
        }

        Ok(match node {
            PlanNode::TableScan { table, schema, .. } => {
                if let Some((column, key)) = index_key {
                    PlanNode::IndexLookup {
                        table,
                        schema,
                        column,
                        key,
                        filter,
                    }
                } else {
                    PlanNode::TableScan {
                        table,
                        schema,
                        filter,
                    }
                }
            }
            PlanNode::VertexScan { graph, schema, .. } => PlanNode::VertexScan {
                graph,
                schema,
                filter,
            },
            PlanNode::EdgeScan { graph, schema, .. } => PlanNode::EdgeScan {
                graph,
                schema,
                filter,
            },
            other => other,
        })
    }

    /// Look for an equality conjunct `new.col = <expr over outer bindings>`
    /// where `new.col` has a hash index — the index-join opportunity. The
    /// matched conjunct is consumed (the index probe enforces it exactly).
    fn find_index_join(
        &self,
        binding_name: &str,
        kind: &BindingKind,
        schema: &Arc<Schema>,
        conjuncts: &[Expr],
        consumed: &mut [bool],
    ) -> Result<Option<(usize, PhysExpr)>> {
        let BindingKind::Table(table) = kind else {
            return Ok(None);
        };
        let Some(indexed_cols) = self.ctx.hash_indexed.get(table) else {
            return Ok(None);
        };
        let mut solo = Namespace::new(self.ctx.graphs.clone());
        solo.push(binding_name, kind.clone(), schema.clone())?;

        for (i, c) in conjuncts.iter().enumerate() {
            if consumed[i] {
                continue;
            }
            let Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = c
            else {
                continue;
            };
            for (inner_side, outer_side) in [(left, right), (right, left)] {
                // Inner side must be a plain column of the new binding,
                // qualified or unambiguous.
                let Ok(PhysExpr::Column { index, ty }) = compile(inner_side, &solo) else {
                    continue;
                };
                if !indexed_cols.contains(&index) {
                    continue;
                }
                // Outer side must compile against the outer namespace and
                // not be resolvable against the new binding (otherwise the
                // conjunct is a same-table predicate, not a join key).
                if compile(outer_side, &solo).is_ok() {
                    continue;
                }
                let Ok(key) = compile(outer_side, &self.ns) else {
                    continue;
                };
                // Hash probes compare by group key; the executor coerces
                // the key to the column type so INT vs DOUBLE never misses.
                let _ = ty;
                consumed[i] = true;
                return Ok(Some((index, key)));
            }
        }
        Ok(None)
    }

    /// Analyze the conjuncts that constrain one path binding and build its
    /// scan configuration.
    fn path_scan_config(
        &self,
        graph: &str,
        binding: &str,
        hint: Option<&PathHint>,
        conjuncts: &[Expr],
        limit1: bool,
    ) -> Result<PathScanConfig> {
        // The namespace visible to anchor/pushdown right-hand sides: the
        // bindings planned so far (the scan's outer).
        let outer_ns = &self.ns;

        let mode = match hint {
            Some(PathHint::ShortestPath { cost_attr }) => {
                let meta = self
                    .ctx
                    .graphs
                    .get(graph)
                    .ok_or_else(|| Error::analysis(format!("unknown graph view `{graph}`")))?;
                let attr = cost_attr.to_ascii_lowercase();
                if meta.def.edge_attr_col(&attr).is_none() {
                    return Err(Error::analysis(format!(
                        "SHORTESTPATH hint references unknown edge attribute `{cost_attr}`"
                    )));
                }
                ScanMode::ShortestPath { cost_attr: attr }
            }
            Some(PathHint::Dfs) => ScanMode::Dfs,
            Some(PathHint::Bfs) => ScanMode::Bfs,
            None => match self.flags.traversal {
                crate::config::TraversalChoice::Auto => ScanMode::Auto,
                crate::config::TraversalChoice::Dfs => ScanMode::Dfs,
                crate::config::TraversalChoice::Bfs => ScanMode::Bfs,
            },
        };
        let is_sp = matches!(mode, ScanMode::ShortestPath { .. });

        // ---- length window (§6.1) ----
        let (mut min_len, mut max_len) = (0usize, None::<usize>);
        if self.flags.length_inference {
            for c in conjuncts {
                apply_length_bounds(c, binding, &mut min_len, &mut max_len);
            }
        }
        let max_len = max_len.unwrap_or(if is_sp {
            64 // SPScan terminates by cost order; the cap is a safety net
        } else {
            self.flags.default_max_path_len
        });

        // ---- anchors ----
        let mut start = StartSource::AllVertexes;
        for c in conjuncts {
            if let Some(rhs) = anchor_rhs(c, binding, true) {
                if let Ok(pe) = compile(rhs, outer_ns) {
                    start = if pe.is_constant() {
                        StartSource::Constant(pe)
                    } else {
                        StartSource::Probe(pe)
                    };
                    break;
                }
            }
        }
        let mut end = None;
        for c in conjuncts {
            if let Some(rhs) = anchor_rhs(c, binding, false) {
                if let Ok(pe) = compile(rhs, outer_ns) {
                    end = Some(pe);
                    break;
                }
            }
        }
        if is_sp {
            if matches!(start, StartSource::AllVertexes) {
                return Err(Error::plan(
                    "SHORTESTPATH requires a start anchor (PS.StartVertex.Id = ...)",
                ));
            }
            if end.is_none() {
                return Err(Error::plan(
                    "SHORTESTPATH requires an end anchor (PS.EndVertex.Id = ...)",
                ));
            }
        }

        // ---- pushdown (§6.2) ----
        let mut edge_preds = Vec::new();
        let mut vertex_preds = Vec::new();
        let mut agg_preds = Vec::new();
        if self.flags.predicate_pushdown {
            for c in conjuncts {
                if let Some(p) = pushable_pred(c, binding, outer_ns)? {
                    match p.target {
                        PathTarget::Edges => edge_preds.push(p),
                        PathTarget::Vertexes => vertex_preds.push(p),
                    }
                }
            }
        }
        if self.flags.aggregate_pushdown {
            for c in conjuncts {
                if let Some(p) = pushable_agg_pred(c, binding, outer_ns)? {
                    agg_preds.push(p);
                }
            }
        }

        // ---- reachability fast-path analysis (see PathScanConfig docs) ----
        let reachability = limit1
            && min_len == 0
            && end.is_some()
            && !matches!(start, StartSource::AllVertexes)
            && matches!(
                mode,
                ScanMode::Auto | ScanMode::Bfs | ScanMode::ShortestPath { .. }
            )
            && conjuncts.iter().all(|c| {
                self.conjunct_safe_for_reachability(c, binding, outer_ns)
            });

        Ok(PathScanConfig {
            graph: graph.to_string(),
            mode,
            min_len,
            max_len,
            start,
            end,
            edge_preds,
            vertex_preds,
            agg_preds,
            lazy: self.flags.lazy_path_scan,
            reachability,
        })
    }

    /// Is this conjunct compatible with returning a single visited-set BFS
    /// path instead of enumerating? Safe forms: conjuncts not mentioning
    /// the binding at all, start/end anchors, recognized explicit length
    /// bounds, and uniform `[0..*]` predicates that were pushed into the
    /// traversal filter.
    fn conjunct_safe_for_reachability(
        &self,
        conjunct: &Expr,
        binding: &str,
        outer_ns: &Namespace,
    ) -> bool {
        if !mentions_binding(conjunct, binding) {
            return true;
        }
        if anchor_rhs(conjunct, binding, true).is_some()
            || anchor_rhs(conjunct, binding, false).is_some()
        {
            return true;
        }
        let (mut min, mut max) = (0usize, None);
        if apply_length_bounds(conjunct, binding, &mut min, &mut max) {
            return true;
        }
        if self.flags.predicate_pushdown {
            if let Ok(Some(p)) = pushable_pred(conjunct, binding, outer_ns) {
                return p.start == 0 && p.end == IndexEnd::Star;
            }
        }
        false
    }

    /// Compile one group-aggregate call into an [`AggSpec`].
    fn compile_agg_call(&self, call: &Expr) -> Result<AggSpec> {
        let Expr::Function { name, args, star } = call else {
            return Err(Error::plan("aggregate rewrite saw a non-function call"));
        };
        let func = AggFunc::parse(name)
            .ok_or_else(|| Error::analysis(format!("unknown function `{name}`")))?;
        if *star {
            if func != AggFunc::Count {
                return Err(Error::analysis(format!("{name}(*) is not supported")));
            }
            return Ok(AggSpec { func, arg: None });
        }
        if args.len() != 1 {
            return Err(Error::analysis(format!(
                "{name}() takes exactly one argument"
            )));
        }
        let arg = compile(&args[0], &self.ns)?;
        Ok(AggSpec {
            func,
            arg: Some(arg),
        })
    }
}

/// Derive an output column name from a projection expression.
fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::CompoundRef(parts) => parts
            .last()
            .map(|p| p.name.to_ascii_lowercase())
            .unwrap_or_else(|| "expr".into()),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        _ => "expr".into(),
    }
}

/// Collect the distinct group-aggregate calls appearing in the SELECT list
/// and HAVING/ORDER BY clauses. Path aggregates (`SUM(PS.Edges.W)`) are
/// scalars and are NOT collected.
fn collect_aggregates(select: &Select) -> Result<Vec<Expr>> {
    let mut calls = Vec::new();
    let mut visit = |e: &Expr| collect_agg_calls(e, &mut calls);
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    if let Some(h) = &select.having {
        visit(h);
    }
    for (e, _) in &select.order_by {
        visit(e);
    }
    Ok(calls)
}

fn collect_agg_calls(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Parameter(_) => {}
        Expr::Function { name, args, .. } => {
            if AggFunc::parse(name).is_some() {
                // Path aggregates look like FUNC(p.Edges.attr): 3-part
                // unindexed ref. They are scalar — skip them here. (If the
                // head isn't a path binding, compilation of the "scalar"
                // form fails later with a clear error.)
                let is_path_agg = matches!(
                    args.as_slice(),
                    [Expr::CompoundRef(parts)]
                        if parts.len() == 3
                            && parts.iter().all(|p| p.index.is_none())
                            && matches!(
                                parts[1].name.to_ascii_lowercase().as_str(),
                                "edges" | "vertexes" | "vertices"
                            )
                );
                if !is_path_agg {
                    if !out.contains(expr) {
                        out.push(expr.clone());
                    }
                    return;
                }
            }
            for a in args {
                collect_agg_calls(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_agg_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_agg_calls(left, out);
            collect_agg_calls(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_agg_calls(expr, out);
            for e in list {
                collect_agg_calls(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_agg_calls(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_agg_calls(expr, out);
            collect_agg_calls(low, out);
            collect_agg_calls(high, out);
        }
        Expr::Literal(_) | Expr::CompoundRef(_) => {}
    }
}

/// Rewrite an expression appearing after aggregation: occurrences of
/// GROUP BY expressions become references to the group columns, aggregate
/// calls become references to the aggregate columns, anything else must be
/// built from those.
fn rewrite_post_agg(
    expr: &Expr,
    group_by: &[Expr],
    agg_calls: &[Expr],
    agg_schema: &Arc<Schema>,
    _ns: &Namespace,
) -> Result<PhysExpr> {
    if let Some(i) = group_by.iter().position(|g| g == expr) {
        return Ok(PhysExpr::Column {
            index: i,
            ty: agg_schema.column(i).data_type,
        });
    }
    if let Some(j) = agg_calls.iter().position(|a| a == expr) {
        let index = group_by.len() + j;
        return Ok(PhysExpr::Column {
            index,
            ty: agg_schema.column(index).data_type,
        });
    }
    match expr {
        Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
        Expr::Parameter(i) => Ok(PhysExpr::Param { index: *i as usize }),
        Expr::Unary { op, expr } => {
            let inner = rewrite_post_agg(expr, group_by, agg_calls, agg_schema, _ns)?;
            Ok(match op {
                grfusion_sql::UnaryOp::Not => PhysExpr::Not(Box::new(inner)),
                grfusion_sql::UnaryOp::Neg => PhysExpr::Neg(Box::new(inner)),
            })
        }
        Expr::Binary { left, op, right } => {
            let l = Box::new(rewrite_post_agg(left, group_by, agg_calls, agg_schema, _ns)?);
            let r = Box::new(rewrite_post_agg(
                right, group_by, agg_calls, agg_schema, _ns,
            )?);
            Ok(if let Some(cmp) = CmpOp::from_binary(*op) {
                PhysExpr::Cmp {
                    op: cmp,
                    left: l,
                    right: r,
                }
            } else {
                match op {
                    BinaryOp::And => PhysExpr::And(l, r),
                    BinaryOp::Or => PhysExpr::Or(l, r),
                    BinaryOp::Add => PhysExpr::Arith {
                        op: grfusion_common::value::ArithOp::Add,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Sub => PhysExpr::Arith {
                        op: grfusion_common::value::ArithOp::Sub,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Mul => PhysExpr::Arith {
                        op: grfusion_common::value::ArithOp::Mul,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Div => PhysExpr::Arith {
                        op: grfusion_common::value::ArithOp::Div,
                        left: l,
                        right: r,
                    },
                    BinaryOp::Mod => PhysExpr::Arith {
                        op: grfusion_common::value::ArithOp::Mod,
                        left: l,
                        right: r,
                    },
                    _ => unreachable!(),
                }
            })
        }
        other => Err(Error::analysis(format!(
            "expression {other:?} must appear in GROUP BY or be an aggregate"
        ))),
    }
}

/// Bindings referenced by an expression, resolved against `ns`. Errors on
/// unknown names so callers can treat "not resolvable here" as
/// "references something else".
pub fn referenced_bindings(expr: &Expr, ns: &Namespace) -> Result<HashSet<String>> {
    let mut out = HashSet::new();
    collect_refs(expr, ns, &mut out)?;
    Ok(out)
}

fn collect_refs(expr: &Expr, ns: &Namespace, out: &mut HashSet<String>) -> Result<()> {
    match expr {
        Expr::Literal(_) | Expr::Parameter(_) => Ok(()),
        Expr::CompoundRef(parts) => {
            let head = &parts[0].name;
            if let Some(b) = ns.binding(head) {
                out.insert(b.name.clone());
                return Ok(());
            }
            if parts.len() == 1 {
                // unqualified column: find the binding(s) that contain it
                let mut found = None;
                for b in &ns.bindings {
                    if b.schema.index_of(head).is_some() {
                        if found.is_some() {
                            return Err(Error::analysis(format!("ambiguous column `{head}`")));
                        }
                        found = Some(b.name.clone());
                    }
                }
                match found {
                    Some(b) => {
                        out.insert(b);
                        Ok(())
                    }
                    None => Err(Error::analysis(format!("unknown column `{head}`"))),
                }
            } else {
                Err(Error::analysis(format!("unknown binding `{head}`")))
            }
        }
        Expr::Unary { expr, .. } => collect_refs(expr, ns, out),
        Expr::Binary { left, right, .. } => {
            collect_refs(left, ns, out)?;
            collect_refs(right, ns, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_refs(expr, ns, out)?;
            for e in list {
                collect_refs(e, ns, out)?;
            }
            Ok(())
        }
        Expr::InSubquery { .. } => Err(Error::analysis(
            "IN (SELECT ...) subqueries are folded before planning",
        )),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_refs(expr, ns, out)?;
            collect_refs(low, ns, out)?;
            collect_refs(high, ns, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_refs(a, ns, out)?;
            }
            Ok(())
        }
    }
}

/// Does this reference chain name the start (or end) vertex id of path
/// binding `binding`? Accepted spellings: `ps.StartVertex`,
/// `ps.StartVertex.Id`, `ps.StartVertexId`.
fn is_vertex_anchor_ref(parts: &[RefPart], binding: &str, start: bool) -> bool {
    if parts.is_empty() || !parts[0].name.eq_ignore_ascii_case(binding) {
        return false;
    }
    if parts.iter().any(|p| p.index.is_some()) {
        return false;
    }
    let (word, word_id) = if start {
        ("startvertex", "startvertexid")
    } else {
        ("endvertex", "endvertexid")
    };
    match parts.len() {
        2 => {
            let n = parts[1].name.to_ascii_lowercase();
            n == word || n == word_id
        }
        3 => {
            parts[1].name.eq_ignore_ascii_case(word) && parts[2].name.eq_ignore_ascii_case("id")
        }
        _ => false,
    }
}

/// If `conjunct` anchors the start (or end) vertex of `binding`
/// (`ps.StartVertex.Id = <rhs>`), return the other side.
fn anchor_rhs<'e>(conjunct: &'e Expr, binding: &str, start: bool) -> Option<&'e Expr> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = conjunct
    else {
        return None;
    };
    if let Expr::CompoundRef(parts) = left.as_ref() {
        if is_vertex_anchor_ref(parts, binding, start) {
            return Some(right);
        }
    }
    if let Expr::CompoundRef(parts) = right.as_ref() {
        if is_vertex_anchor_ref(parts, binding, start) {
            return Some(left);
        }
    }
    None
}

/// Does the expression reference the given path binding anywhere?
fn mentions_binding(expr: &Expr, binding: &str) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Parameter(_) => false,
        Expr::CompoundRef(parts) => parts
            .first()
            .is_some_and(|p| p.name.eq_ignore_ascii_case(binding)),
        Expr::Unary { expr, .. } => mentions_binding(expr, binding),
        Expr::Binary { left, right, .. } => {
            mentions_binding(left, binding) || mentions_binding(right, binding)
        }
        Expr::InList { expr, list, .. } => {
            mentions_binding(expr, binding) || list.iter().any(|e| mentions_binding(e, binding))
        }
        Expr::InSubquery { expr, .. } => mentions_binding(expr, binding),
        Expr::Between {
            expr, low, high, ..
        } => {
            mentions_binding(expr, binding)
                || mentions_binding(low, binding)
                || mentions_binding(high, binding)
        }
        Expr::Function { args, .. } => args.iter().any(|e| mentions_binding(e, binding)),
    }
}

/// Update `[min, max]` length bounds from one conjunct (§6.1): explicit
/// `ps.Length` comparisons with integer literals, plus implicit bounds from
/// indexed references anywhere in the conjunct. Returns `true` iff the
/// conjunct was recognized as an *explicit* length constraint.
fn apply_length_bounds(
    conjunct: &Expr,
    binding: &str,
    min_len: &mut usize,
    max_len: &mut Option<usize>,
) -> bool {
    // Explicit PS.Length op literal.
    if let Expr::Binary { left, op, right } = conjunct {
        let as_len_ref = |e: &Expr| -> bool {
            matches!(e, Expr::CompoundRef(parts)
                if parts.len() == 2
                    && parts[0].name.eq_ignore_ascii_case(binding)
                    && parts[1].name.eq_ignore_ascii_case("length")
                    && parts.iter().all(|p| p.index.is_none()))
        };
        let as_lit = |e: &Expr| -> Option<i64> {
            match e {
                Expr::Literal(grfusion_common::Value::Integer(i)) => Some(*i),
                _ => None,
            }
        };
        let (len_side, lit, op) = if as_len_ref(left) {
            (true, as_lit(right), *op)
        } else if as_len_ref(right) {
            // mirror the operator: lit OP len  ≡  len OP' lit
            let mirrored = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::LtEq => BinaryOp::GtEq,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::GtEq => BinaryOp::LtEq,
                other => *other,
            };
            (true, as_lit(left), mirrored)
        } else {
            (false, None, *op)
        };
        if len_side {
            if let Some(k) = lit {
                let k = k.max(0) as usize;
                match op {
                    BinaryOp::Eq => {
                        *min_len = (*min_len).max(k);
                        *max_len = Some(max_len.map_or(k, |m| m.min(k)));
                    }
                    BinaryOp::LtEq => *max_len = Some(max_len.map_or(k, |m| m.min(k))),
                    BinaryOp::Lt => {
                        let k = k.saturating_sub(1);
                        *max_len = Some(max_len.map_or(k, |m| m.min(k)));
                    }
                    BinaryOp::GtEq => *min_len = (*min_len).max(k),
                    BinaryOp::Gt => *min_len = (*min_len).max(k + 1),
                    _ => return false, // e.g. Length <> k: not a window bound
                }
                return true;
            }
        }
    }
    // PS.Length BETWEEN a AND b.
    if let Expr::Between {
        expr,
        low,
        high,
        negated: false,
    } = conjunct
    {
        if matches!(expr.as_ref(), Expr::CompoundRef(parts)
            if parts.len() == 2
                && parts[0].name.eq_ignore_ascii_case(binding)
                && parts[1].name.eq_ignore_ascii_case("length"))
        {
            if let (
                Expr::Literal(grfusion_common::Value::Integer(a)),
                Expr::Literal(grfusion_common::Value::Integer(b)),
            ) = (low.as_ref(), high.as_ref())
            {
                *min_len = (*min_len).max((*a).max(0) as usize);
                let b = (*b).max(0) as usize;
                *max_len = Some(max_len.map_or(b, |m| m.min(b)));
                return true;
            }
        }
    }
    // Implicit minimums from indexed references anywhere in the conjunct.
    implicit_min_from_refs(conjunct, binding, min_len);
    false
}

fn implicit_min_from_refs(expr: &Expr, binding: &str, min_len: &mut usize) {
    match expr {
        Expr::CompoundRef(parts) => {
            if parts.len() >= 2 && parts[0].name.eq_ignore_ascii_case(binding) {
                if let Some(range) = parts[1].index {
                    let seg = parts[1].name.to_ascii_lowercase();
                    // Edge position i requires length ≥ i+1; vertex position
                    // i requires length ≥ i (vertex count = length + 1).
                    let needed = |pos: u64| -> usize {
                        if seg == "edges" {
                            pos as usize + 1
                        } else {
                            pos as usize
                        }
                    };
                    if seg == "edges" || seg == "vertexes" || seg == "vertices" {
                        let m = match range.end {
                            IndexEnd::At => needed(range.start),
                            // `[0..*]` is vacuous on short paths (no
                            // minimum); `[k..*]`, k ≥ 1, requires position
                            // k (§6.1's `Edges[5..*]` ⇒ length ≥ 6).
                            IndexEnd::Star if range.start == 0 => 0,
                            IndexEnd::Star => needed(range.start),
                            IndexEnd::Bounded(b) => needed(b.max(range.start)),
                        };
                        *min_len = (*min_len).max(m);
                    }
                }
            }
        }
        Expr::Unary { expr, .. } => implicit_min_from_refs(expr, binding, min_len),
        Expr::Binary { left, right, .. } => {
            implicit_min_from_refs(left, binding, min_len);
            implicit_min_from_refs(right, binding, min_len);
        }
        Expr::InList { expr, list, .. } => {
            implicit_min_from_refs(expr, binding, min_len);
            for e in list {
                implicit_min_from_refs(e, binding, min_len);
            }
        }
        Expr::InSubquery { expr, .. } => implicit_min_from_refs(expr, binding, min_len),
        Expr::Between {
            expr, low, high, ..
        } => {
            implicit_min_from_refs(expr, binding, min_len);
            implicit_min_from_refs(low, binding, min_len);
            implicit_min_from_refs(high, binding, min_len);
        }
        Expr::Function { args, .. } => {
            for a in args {
                implicit_min_from_refs(a, binding, min_len);
            }
        }
        Expr::Literal(_) | Expr::Parameter(_) => {}
    }
}

/// Try to turn a conjunct into a traversal-pushable predicate (§6.2):
/// an (optionally ranged) indexed attribute reference on `binding` compared
/// against an expression over the scan's outer bindings.
fn pushable_pred(
    conjunct: &Expr,
    binding: &str,
    outer_ns: &Namespace,
) -> Result<Option<PushedPred>> {
    // Decompose: ref-side and rhs-side.
    let decompose = |e: &Expr| -> Option<(PathTarget, u64, IndexEnd, String)> {
        let Expr::CompoundRef(parts) = e else {
            return None;
        };
        if parts.len() != 3
            || !parts[0].name.eq_ignore_ascii_case(binding)
            || parts[0].index.is_some()
            || parts[2].index.is_some()
        {
            return None;
        }
        let target = match parts[1].name.to_ascii_lowercase().as_str() {
            "edges" => PathTarget::Edges,
            "vertexes" | "vertices" => PathTarget::Vertexes,
            _ => return None,
        };
        let range = parts[1].index?;
        let attr = parts[2].name.to_ascii_lowercase();
        // Direction-sensitive pseudo-attributes are not pushable.
        if attr == "startvertex" || attr == "endvertex" {
            return None;
        }
        Some((target, range.start, range.end, attr))
    };

    match conjunct {
        Expr::Binary { left, op, right } => {
            let Some(cmp) = CmpOp::from_binary(*op) else {
                return Ok(None);
            };
            if let Some((target, start, end, attr)) = decompose(left) {
                if let Ok(rhs) = compile(right, outer_ns) {
                    return Ok(Some(PushedPred {
                        target,
                        start,
                        end,
                        attr,
                        test: PushedTest::Cmp { op: cmp, rhs },
                    }));
                }
            }
            if let Some((target, start, end, attr)) = decompose(right) {
                let flipped = match cmp {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::LtEq => CmpOp::GtEq,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::GtEq => CmpOp::LtEq,
                    other => other,
                };
                if let Ok(rhs) = compile(left, outer_ns) {
                    return Ok(Some(PushedPred {
                        target,
                        start,
                        end,
                        attr,
                        test: PushedTest::Cmp { op: flipped, rhs },
                    }));
                }
            }
            Ok(None)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            if let Some((target, start, end, attr)) = decompose(expr) {
                let mut compiled = Vec::with_capacity(list.len());
                for e in list {
                    match compile(e, outer_ns) {
                        Ok(pe) => compiled.push(pe),
                        Err(_) => return Ok(None),
                    }
                }
                return Ok(Some(PushedPred {
                    target,
                    start,
                    end,
                    attr,
                    test: PushedTest::In {
                        list: compiled,
                        negated: *negated,
                    },
                }));
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

/// Try to turn a conjunct into a pushable running-aggregate bound (§6.2):
/// `SUM(ps.Edges.attr) < rhs` (or `<=`), possibly mirrored.
fn pushable_agg_pred(
    conjunct: &Expr,
    binding: &str,
    outer_ns: &Namespace,
) -> Result<Option<PushedAggPred>> {
    let Expr::Binary { left, op, right } = conjunct else {
        return Ok(None);
    };
    let decompose = |e: &Expr| -> Option<(PathTarget, String)> {
        let Expr::Function { name, args, star } = e else {
            return None;
        };
        if *star || !name.eq_ignore_ascii_case("sum") || args.len() != 1 {
            return None;
        }
        let Expr::CompoundRef(parts) = &args[0] else {
            return None;
        };
        if parts.len() != 3
            || !parts[0].name.eq_ignore_ascii_case(binding)
            || parts.iter().any(|p| p.index.is_some())
        {
            return None;
        }
        let target = match parts[1].name.to_ascii_lowercase().as_str() {
            "edges" => PathTarget::Edges,
            "vertexes" | "vertices" => PathTarget::Vertexes,
            _ => return None,
        };
        Some((target, parts[2].name.to_ascii_lowercase()))
    };
    // SUM(...) < rhs
    if let Some((target, attr)) = decompose(left) {
        let op = match op {
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::LtEq,
            _ => return Ok(None),
        };
        if let Ok(rhs) = compile(right, outer_ns) {
            return Ok(Some(PushedAggPred {
                target,
                attr,
                op,
                rhs,
            }));
        }
    }
    // rhs > SUM(...)
    if let Some((target, attr)) = decompose(right) {
        let op = match op {
            BinaryOp::Gt => CmpOp::Lt,
            BinaryOp::GtEq => CmpOp::LtEq,
            _ => return Ok(None),
        };
        if let Ok(rhs) = compile(left, outer_ns) {
            return Ok(Some(PushedAggPred {
                target,
                attr,
                op,
                rhs,
            }));
        }
    }
    Ok(None)
}
