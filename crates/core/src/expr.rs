//! Expression compilation and evaluation.
//!
//! The parser produces generic reference chains (`PS.Edges[0..*].Type`);
//! this module resolves them against the query's FROM-clause bindings into
//! physical expressions over the pipeline's flat rows. Three GRFusion
//! extensions live here (EDBT 2018 §4, §5.2):
//!
//! * **Path properties** — `PS.Length`, `PS.StartVertex.attr`,
//!   `PS.Edges[2].EndVertex`, ... evaluate against the path payload column
//!   by dereferencing graph-view tuple pointers.
//! * **Quantified range predicates** — `PS.Edges[0..*].Type IN (...)`
//!   means *every* edge in the range satisfies the test.
//! * **Path aggregates** — `SUM(PS.Edges.Weight)` is a *scalar* per path
//!   (not a group aggregate).
//!
//! Comparison evaluation follows SQL three-valued logic; filters accept
//! only `TRUE`.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use grfusion_common::value::ArithOp;
use grfusion_common::{DataType, Error, PathData, Result, Row, Schema, Value};
use grfusion_sql::{BinaryOp, Expr, IndexEnd, RefPart, UnaryOp};

use crate::env::{GraphEnv, QueryEnv};
use crate::graph_view::GraphViewDef;

// ---------------------------------------------------------------------------
// Bindings / namespace
// ---------------------------------------------------------------------------

/// What a FROM-clause binding denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingKind {
    /// A relational table (lowercase name).
    Table(String),
    /// `gv.VERTEXES` scan output.
    Vertexes(String),
    /// `gv.EDGES` scan output.
    Edges(String),
    /// `gv.PATHS` — contributes a single Path-typed column.
    Paths(String),
}

/// One FROM-clause binding with its slice of the combined pipeline row.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Binding name, lowercase (alias or source name).
    pub name: String,
    pub kind: BindingKind,
    /// Schema of this binding's columns.
    pub schema: Arc<Schema>,
    /// Offset of this binding's first column in the combined row.
    pub offset: usize,
}

/// Compile-time metadata for a graph view (definition + source schemas so
/// attribute types resolve statically).
#[derive(Debug, Clone)]
pub struct GraphMeta {
    pub def: GraphViewDef,
    pub vertex_schema: Arc<Schema>,
    pub edge_schema: Arc<Schema>,
}

impl GraphMeta {
    fn vertex_attr_type(&self, attr: &str) -> Result<DataType> {
        if attr.eq_ignore_ascii_case("id")
            || attr.eq_ignore_ascii_case("fanin")
            || attr.eq_ignore_ascii_case("fanout")
        {
            return Ok(DataType::Integer);
        }
        let col = self.def.vertex_attr_col(attr).ok_or_else(|| {
            Error::analysis(format!(
                "graph view `{}` has no vertex attribute `{attr}`",
                self.def.name
            ))
        })?;
        Ok(self.vertex_schema.column(col).data_type)
    }

    fn edge_attr_type(&self, attr: &str) -> Result<DataType> {
        if attr.eq_ignore_ascii_case("id")
            || attr.eq_ignore_ascii_case("startvertex")
            || attr.eq_ignore_ascii_case("endvertex")
        {
            return Ok(DataType::Integer);
        }
        let col = self.def.edge_attr_col(attr).ok_or_else(|| {
            Error::analysis(format!(
                "graph view `{}` has no edge attribute `{attr}`",
                self.def.name
            ))
        })?;
        Ok(self.edge_schema.column(col).data_type)
    }
}

/// The name-resolution context for one query: FROM bindings plus graph
/// metadata.
#[derive(Debug, Clone)]
pub struct Namespace {
    pub bindings: Vec<Binding>,
    pub graphs: Arc<HashMap<String, GraphMeta>>,
}

impl Namespace {
    pub fn new(graphs: Arc<HashMap<String, GraphMeta>>) -> Self {
        Namespace {
            bindings: Vec::new(),
            graphs,
        }
    }

    /// Total width of the combined row.
    pub fn width(&self) -> usize {
        self.bindings
            .last()
            .map_or(0, |b| b.offset + b.schema.len())
    }

    /// Append a binding; returns an analysis error on duplicate names.
    pub fn push(&mut self, name: &str, kind: BindingKind, schema: Arc<Schema>) -> Result<()> {
        let name = name.to_ascii_lowercase();
        if self.bindings.iter().any(|b| b.name == name) {
            return Err(Error::analysis(format!("duplicate FROM binding `{name}`")));
        }
        let offset = self.width();
        self.bindings.push(Binding {
            name,
            kind,
            schema,
            offset,
        });
        Ok(())
    }

    pub fn binding(&self, name: &str) -> Option<&Binding> {
        let lower = name.to_ascii_lowercase();
        self.bindings.iter().find(|b| b.name == lower)
    }

    /// Combined schema of all bindings in order.
    pub fn combined_schema(&self) -> Schema {
        let mut s = Schema::default();
        for b in &self.bindings {
            for c in b.schema.columns() {
                s.push(c.clone());
            }
        }
        s
    }

    /// Resolve an unqualified column across all bindings (must be unique).
    fn resolve_unqualified(&self, name: &str) -> Result<(usize, DataType)> {
        let mut found = None;
        for b in &self.bindings {
            if let Some(i) = b.schema.index_of(name) {
                if found.is_some() {
                    return Err(Error::analysis(format!("ambiguous column `{name}`")));
                }
                found = Some((b.offset + i, b.schema.column(i).data_type));
            }
        }
        found.ok_or_else(|| Error::analysis(format!("unknown column `{name}`")))
    }

    fn graph_meta(&self, graph: &str) -> Result<&GraphMeta> {
        self.graphs
            .get(graph)
            .ok_or_else(|| Error::analysis(format!("unknown graph view `{graph}`")))
    }
}

// ---------------------------------------------------------------------------
// Physical expressions
// ---------------------------------------------------------------------------

/// Comparison operators at the physical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn from_binary(op: BinaryOp) -> Option<CmpOp> {
        Some(match op {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::NotEq => CmpOp::NotEq,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::LtEq,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::GtEq => CmpOp::GtEq,
            _ => return None,
        })
    }

    /// Apply to an ordering result under three-valued logic.
    pub fn test(self, ord: Option<Ordering>) -> Value {
        match ord {
            None => Value::Null,
            Some(o) => Value::Boolean(match self {
                CmpOp::Eq => o == Ordering::Equal,
                CmpOp::NotEq => o != Ordering::Equal,
                CmpOp::Lt => o == Ordering::Less,
                CmpOp::LtEq => o != Ordering::Greater,
                CmpOp::Gt => o == Ordering::Greater,
                CmpOp::GtEq => o != Ordering::Less,
            }),
        }
    }
}

/// A resolved path property (evaluated against a Path-typed column).
#[derive(Debug, Clone, PartialEq)]
pub enum PathProp {
    /// The whole path value.
    Whole,
    /// `PS.Length` — number of edges.
    Length,
    /// `PS.PathString`.
    PathString,
    /// `PS.Cost` — accumulated SPScan cost.
    Cost,
    /// `PS.StartVertex` / `PS.StartVertex.Id`.
    StartVertexId,
    /// `PS.EndVertex` / `PS.EndVertex.Id`.
    EndVertexId,
    /// `PS.StartVertex.attr`.
    StartVertexAttr(String),
    /// `PS.EndVertex.attr`.
    EndVertexAttr(String),
    /// `PS.Edges[i].attr` (attr may be `StartVertex`/`EndVertex`/`Id`).
    EdgeAttrAt(u64, String),
    /// `PS.Vertexes[i].attr`.
    VertexAttrAt(u64, String),
    /// `PS.Edges[i]` — the edge id.
    EdgeIdAt(u64),
    /// `PS.Vertexes[i]` — the vertex id.
    VertexIdAt(u64),
}

/// Range target for quantified predicates and path aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTarget {
    Edges,
    Vertexes,
}

/// Test applied to every element of a quantified range.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantTest {
    Cmp { op: CmpOp, rhs: Box<PhysExpr> },
    In { list: Vec<PhysExpr>, negated: bool },
}

/// Aggregate functions (group aggregates and path aggregates share these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// A compiled physical expression over the pipeline's combined rows.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    Literal(Value),
    /// Positional parameter of a prepared statement, bound at execution
    /// time from `QueryEnv::params`.
    Param { index: usize },
    /// Absolute column index in the combined row.
    Column { index: usize, ty: DataType },
    /// Path property of the Path value at `col`.
    PathProp {
        col: usize,
        prop: PathProp,
        ty: DataType,
    },
    /// Scalar path aggregate, e.g. `SUM(PS.Edges.Weight)`.
    PathAgg {
        col: usize,
        target: PathTarget,
        attr: String,
        func: AggFunc,
        ty: DataType,
    },
    Not(Box<PhysExpr>),
    Neg(Box<PhysExpr>),
    And(Box<PhysExpr>, Box<PhysExpr>),
    Or(Box<PhysExpr>, Box<PhysExpr>),
    Cmp {
        op: CmpOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    Arith {
        op: ArithOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Between {
        expr: Box<PhysExpr>,
        low: Box<PhysExpr>,
        high: Box<PhysExpr>,
        negated: bool,
    },
    /// Universally quantified range predicate:
    /// `PS.<target>[start..end].attr <test>` holds for *every* position.
    Quant {
        col: usize,
        target: PathTarget,
        start: u64,
        end: IndexEnd,
        attr: String,
        test: QuantTest,
    },
}

impl PhysExpr {
    /// Static result type (used to build output schemas).
    pub fn static_type(&self) -> DataType {
        match self {
            // Parameters are untyped until bound; VARCHAR is the schema
            // placeholder (projecting a bare `?` is legal but rare).
            PhysExpr::Param { .. } => DataType::Varchar,
            PhysExpr::Literal(v) => match v {
                Value::Integer(_) => DataType::Integer,
                Value::Double(_) => DataType::Double,
                Value::Boolean(_) => DataType::Boolean,
                Value::Text(_) => DataType::Varchar,
                Value::Path(_) => DataType::Path,
                Value::Null => DataType::Varchar,
            },
            PhysExpr::Column { ty, .. }
            | PhysExpr::PathProp { ty, .. }
            | PhysExpr::PathAgg { ty, .. } => *ty,
            PhysExpr::Not(_)
            | PhysExpr::And(..)
            | PhysExpr::Or(..)
            | PhysExpr::Cmp { .. }
            | PhysExpr::InList { .. }
            | PhysExpr::Between { .. }
            | PhysExpr::Quant { .. } => DataType::Boolean,
            PhysExpr::Neg(e) => e.static_type(),
            PhysExpr::Arith { left, right, .. } => {
                if left.static_type() == DataType::Integer
                    && right.static_type() == DataType::Integer
                {
                    DataType::Integer
                } else {
                    DataType::Double
                }
            }
        }
    }

    /// Whether the expression references any column (false ⇒ constant).
    pub fn is_constant(&self) -> bool {
        match self {
            PhysExpr::Literal(_) | PhysExpr::Param { .. } => true,
            PhysExpr::Column { .. }
            | PhysExpr::PathProp { .. }
            | PhysExpr::PathAgg { .. }
            | PhysExpr::Quant { .. } => false,
            PhysExpr::Not(e) | PhysExpr::Neg(e) => e.is_constant(),
            PhysExpr::And(a, b) | PhysExpr::Or(a, b) => a.is_constant() && b.is_constant(),
            PhysExpr::Cmp { left, right, .. } | PhysExpr::Arith { left, right, .. } => {
                left.is_constant() && right.is_constant()
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(|e| e.is_constant())
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => expr.is_constant() && low.is_constant() && high.is_constant(),
        }
    }

    /// Evaluate against a combined row.
    pub fn eval(&self, row: &Row, env: &QueryEnv<'_>) -> Result<Value> {
        match self {
            PhysExpr::Literal(v) => Ok(v.clone()),
            PhysExpr::Param { index } => {
                env.params.get(*index).cloned().ok_or_else(|| {
                    Error::execution(format!(
                        "prepared statement executed with too few parameters (needs index {index})"
                    ))
                })
            }
            PhysExpr::Column { index, .. } => Ok(row[*index].clone()),
            PhysExpr::PathProp { col, prop, .. } => {
                let path = row[*col].as_path()?;
                eval_path_prop(path, prop, env)
            }
            PhysExpr::PathAgg {
                col,
                target,
                attr,
                func,
                ..
            } => {
                let path = row[*col].as_path()?;
                let genv = env.graph_of_path(path)?;
                eval_path_agg(path, *target, attr, *func, genv)
            }
            PhysExpr::Not(e) => match e.eval(row, env)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Boolean(!v.as_boolean()?)),
            },
            PhysExpr::Neg(e) => {
                Value::Integer(0).arith(ArithOp::Sub, &e.eval(row, env)?)
            }
            PhysExpr::And(a, b) => {
                // Kleene AND.
                let va = a.eval(row, env)?;
                if va == Value::Boolean(false) {
                    return Ok(Value::Boolean(false));
                }
                let vb = b.eval(row, env)?;
                if vb == Value::Boolean(false) {
                    return Ok(Value::Boolean(false));
                }
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Boolean(va.as_boolean()? && vb.as_boolean()?))
            }
            PhysExpr::Or(a, b) => {
                let va = a.eval(row, env)?;
                if va == Value::Boolean(true) {
                    return Ok(Value::Boolean(true));
                }
                let vb = b.eval(row, env)?;
                if vb == Value::Boolean(true) {
                    return Ok(Value::Boolean(true));
                }
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Boolean(va.as_boolean()? || vb.as_boolean()?))
            }
            PhysExpr::Cmp { op, left, right } => {
                let l = left.eval(row, env)?;
                let r = right.eval(row, env)?;
                Ok(op.test(l.sql_cmp(&r)))
            }
            PhysExpr::Arith { op, left, right } => {
                let l = left.eval(row, env)?;
                let r = right.eval(row, env)?;
                l.arith(*op, &r)
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row, env)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_unknown = false;
                for item in list {
                    let iv = item.eval(row, env)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            return Ok(Value::Boolean(!negated));
                        }
                        Some(false) => {}
                        None => saw_unknown = true,
                    }
                }
                if saw_unknown {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Boolean(*negated))
                }
            }
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, env)?;
                let lo = low.eval(row, env)?;
                let hi = high.eval(row, env)?;
                let ge = CmpOp::GtEq.test(v.sql_cmp(&lo));
                let le = CmpOp::LtEq.test(v.sql_cmp(&hi));
                let both = match (ge, le) {
                    (Value::Boolean(false), _) | (_, Value::Boolean(false)) => {
                        Value::Boolean(false)
                    }
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    _ => Value::Boolean(true),
                };
                Ok(match both {
                    Value::Boolean(b) => Value::Boolean(b != *negated),
                    other => other,
                })
            }
            PhysExpr::Quant {
                col,
                target,
                start,
                end,
                attr,
                test,
            } => {
                let path = row[*col].as_path()?;
                let genv = env.graph_of_path(path)?;
                eval_quant(path, *target, *start, *end, attr, test, row, env, genv)
            }
        }
    }

    /// Evaluate as a filter predicate: only TRUE passes (SQL semantics).
    pub fn matches(&self, row: &Row, env: &QueryEnv<'_>) -> Result<bool> {
        Ok(self.eval(row, env)?.is_truthy())
    }

    /// Whether this expression can be evaluated columnarly over a batch
    /// with results identical to per-row [`PhysExpr::eval`].
    ///
    /// The bar is *provable infallibility*: scalar AND/OR short-circuit
    /// (Kleene `false AND err` returns false without surfacing `err`), so a
    /// columnar kernel that evaluates both sides everywhere is only
    /// equivalent when no subtree can error on any row. That admits
    /// literals, columns, comparisons, BETWEEN/IN over those, and boolean
    /// combinators whose operands are statically boolean — and excludes
    /// arithmetic (overflow, division by zero), parameters (arity errors),
    /// and every path accessor (graph lookups can fail). Fallible trees
    /// take the batch executor's row-major fallback instead.
    pub(crate) fn vector_safe(&self) -> bool {
        match self {
            PhysExpr::Literal(_) | PhysExpr::Column { .. } => true,
            PhysExpr::Not(e) => e.vector_safe() && e.static_type() == DataType::Boolean,
            PhysExpr::And(a, b) | PhysExpr::Or(a, b) => {
                a.vector_safe()
                    && b.vector_safe()
                    && a.static_type() == DataType::Boolean
                    && b.static_type() == DataType::Boolean
            }
            PhysExpr::Cmp { left, right, .. } => left.vector_safe() && right.vector_safe(),
            PhysExpr::Between {
                expr, low, high, ..
            } => expr.vector_safe() && low.vector_safe() && high.vector_safe(),
            PhysExpr::InList { expr, list, .. } => {
                expr.vector_safe() && list.iter().all(|e| e.vector_safe())
            }
            _ => false,
        }
    }

    /// Columnar twin of [`PhysExpr::eval`]: evaluate over a whole batch
    /// (column-major `cols`, `len` rows) in one pass per subexpression.
    /// Only called on [`PhysExpr::vector_safe`] trees, whose per-row
    /// results provably match scalar evaluation (same Kleene logic, and no
    /// subtree can error, so eager both-sides evaluation is unobservable).
    pub(crate) fn eval_vector(
        &self,
        cols: &[Vec<Value>],
        len: usize,
        env: &QueryEnv<'_>,
    ) -> Result<Vec<Value>> {
        match self {
            PhysExpr::Literal(v) => Ok(vec![v.clone(); len]),
            PhysExpr::Column { index, .. } => Ok(cols[*index][..len].to_vec()),
            PhysExpr::Not(e) => {
                let mut vs = e.eval_vector(cols, len, env)?;
                for v in &mut vs {
                    let negated = match &*v {
                        Value::Null => Value::Null,
                        other => Value::Boolean(!other.as_boolean()?),
                    };
                    *v = negated;
                }
                Ok(vs)
            }
            PhysExpr::And(a, b) => {
                let va = a.eval_vector(cols, len, env)?;
                let vb = b.eval_vector(cols, len, env)?;
                va.into_iter()
                    .zip(vb)
                    .map(|(x, y)| {
                        Ok(if x == Value::Boolean(false) || y == Value::Boolean(false) {
                            Value::Boolean(false)
                        } else if x.is_null() || y.is_null() {
                            Value::Null
                        } else {
                            Value::Boolean(x.as_boolean()? && y.as_boolean()?)
                        })
                    })
                    .collect()
            }
            PhysExpr::Or(a, b) => {
                let va = a.eval_vector(cols, len, env)?;
                let vb = b.eval_vector(cols, len, env)?;
                va.into_iter()
                    .zip(vb)
                    .map(|(x, y)| {
                        Ok(if x == Value::Boolean(true) || y == Value::Boolean(true) {
                            Value::Boolean(true)
                        } else if x.is_null() || y.is_null() {
                            Value::Null
                        } else {
                            Value::Boolean(x.as_boolean()? || y.as_boolean()?)
                        })
                    })
                    .collect()
            }
            PhysExpr::Cmp { op, left, right } => {
                let l = left.eval_vector(cols, len, env)?;
                let r = right.eval_vector(cols, len, env)?;
                Ok(l.into_iter()
                    .zip(r)
                    .map(|(x, y)| op.test(x.sql_cmp(&y)))
                    .collect())
            }
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval_vector(cols, len, env)?;
                let lo = low.eval_vector(cols, len, env)?;
                let hi = high.eval_vector(cols, len, env)?;
                Ok(v.into_iter()
                    .zip(lo)
                    .zip(hi)
                    .map(|((x, l), h)| {
                        let ge = CmpOp::GtEq.test(x.sql_cmp(&l));
                        let le = CmpOp::LtEq.test(x.sql_cmp(&h));
                        let both = match (ge, le) {
                            (Value::Boolean(false), _) | (_, Value::Boolean(false)) => {
                                Value::Boolean(false)
                            }
                            (Value::Null, _) | (_, Value::Null) => Value::Null,
                            _ => Value::Boolean(true),
                        };
                        match both {
                            Value::Boolean(b) => Value::Boolean(b != *negated),
                            other => other,
                        }
                    })
                    .collect())
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_vector(cols, len, env)?;
                let items: Vec<Vec<Value>> = list
                    .iter()
                    .map(|e| e.eval_vector(cols, len, env))
                    .collect::<Result<_>>()?;
                Ok(v.into_iter()
                    .enumerate()
                    .map(|(i, x)| {
                        if x.is_null() {
                            return Value::Null;
                        }
                        let mut saw_unknown = false;
                        for item in &items {
                            match x.sql_eq(&item[i]) {
                                Some(true) => return Value::Boolean(!negated),
                                Some(false) => {}
                                None => saw_unknown = true,
                            }
                        }
                        if saw_unknown {
                            Value::Null
                        } else {
                            Value::Boolean(*negated)
                        }
                    })
                    .collect())
            }
            other => Err(Error::execution(format!(
                "expression is not vectorizable: {other:?}"
            ))),
        }
    }
}

fn eval_path_prop(path: &PathData, prop: &PathProp, env: &QueryEnv<'_>) -> Result<Value> {
    Ok(match prop {
        PathProp::Whole => Value::Path(Arc::new(path.clone())),
        PathProp::Length => Value::Integer(crate::env::degree_i64(path.length())),
        PathProp::PathString => Value::text(path.path_string()),
        PathProp::Cost => Value::Double(path.cost),
        PathProp::StartVertexId => Value::Integer(path.start_vertex()),
        PathProp::EndVertexId => Value::Integer(path.end_vertex()),
        PathProp::StartVertexAttr(attr) => {
            let genv = env.graph_of_path(path)?;
            genv.path_vertex_attr(path, 0, attr)?
        }
        PathProp::EndVertexAttr(attr) => {
            let genv = env.graph_of_path(path)?;
            genv.path_vertex_attr(path, path.vertexes.len() - 1, attr)?
        }
        PathProp::EdgeAttrAt(i, attr) => {
            let genv = env.graph_of_path(path)?;
            genv.path_edge_attr(path, *i as usize, attr)?
        }
        PathProp::VertexAttrAt(i, attr) => {
            let genv = env.graph_of_path(path)?;
            genv.path_vertex_attr(path, *i as usize, attr)?
        }
        PathProp::EdgeIdAt(i) => path
            .edges
            .get(*i as usize)
            .map_or(Value::Null, |&e| Value::Integer(e)),
        PathProp::VertexIdAt(i) => path
            .vertexes
            .get(*i as usize)
            .map_or(Value::Null, |&v| Value::Integer(v)),
    })
}

/// AVG of an exact integer sum. For sums within f64's exact-integer window
/// (|isum| ≤ 2^53) this is the plain cast-then-divide — one correctly
/// rounded operation, identical to the engine's historical results. Beyond
/// 2^53 the cast itself is lossy (up to 2^10 ulps near 2^63), so the
/// division is done in i128 first and only the sub-divisor remainder goes
/// through floating point: `q + r/count` where `q = isum / count` is exact.
pub(crate) fn integer_avg(isum: i128, count: i128) -> f64 {
    const EXACT: i128 = 1 << 53;
    if isum.abs() <= EXACT {
        isum as f64 / count as f64
    } else {
        let q = isum / count;
        let r = isum % count;
        q as f64 + r as f64 / count as f64
    }
}

/// Evaluate a scalar path aggregate (`SUM(PS.Edges.W)` etc., §4).
pub fn eval_path_agg(
    path: &PathData,
    target: PathTarget,
    attr: &str,
    func: AggFunc,
    genv: &GraphEnv<'_>,
) -> Result<Value> {
    let count = match target {
        PathTarget::Edges => path.edges.len(),
        PathTarget::Vertexes => path.vertexes.len(),
    };
    if func == AggFunc::Count {
        return Ok(Value::Integer(crate::env::degree_i64(count)));
    }
    let mut sum = 0.0f64;
    // Exact integer accumulator: `f64` loses precision past 2^53, so an
    // all-integer aggregate is carried in `i128` (which cannot overflow
    // from summing `i64`s) and checked back into `i64` at the end.
    let mut isum = 0i128;
    let mut n = 0usize;
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut all_int = true;
    for pos in 0..count {
        let v = match target {
            PathTarget::Edges => genv.path_edge_attr(path, pos, attr)?,
            PathTarget::Vertexes => genv.path_vertex_attr(path, pos, attr)?,
        };
        if v.is_null() {
            continue;
        }
        match func {
            AggFunc::Sum | AggFunc::Avg => {
                if let Value::Integer(i) = &v {
                    isum += *i as i128;
                } else {
                    all_int = false;
                }
                sum += v.as_double()?;
                n += 1;
            }
            AggFunc::Min => {
                if min.as_ref().is_none_or(|m| {
                    v.sql_cmp(m) == Some(Ordering::Less)
                }) {
                    min = Some(v);
                }
            }
            AggFunc::Max => {
                if max.as_ref().is_none_or(|m| {
                    v.sql_cmp(m) == Some(Ordering::Greater)
                }) {
                    max = Some(v);
                }
            }
            AggFunc::Count => {
                return Err(Error::execution(
                    "COUNT does not flow through value aggregation",
                ))
            }
        }
    }
    Ok(match func {
        AggFunc::Sum => {
            if n == 0 {
                Value::Null
            } else if all_int {
                Value::Integer(
                    i64::try_from(isum).map_err(|_| Error::execution("integer overflow"))?,
                )
            } else {
                Value::Double(sum)
            }
        }
        AggFunc::Avg => {
            if n == 0 {
                Value::Null
            } else if all_int {
                Value::Double(integer_avg(isum, n as i128))
            } else {
                Value::Double(sum / n as f64)
            }
        }
        AggFunc::Min => min.unwrap_or(Value::Null),
        AggFunc::Max => max.unwrap_or(Value::Null),
        AggFunc::Count => {
            return Err(Error::execution(
                "COUNT does not flow through value aggregation",
            ))
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn eval_quant(
    path: &PathData,
    target: PathTarget,
    start: u64,
    end: IndexEnd,
    attr: &str,
    test: &QuantTest,
    row: &Row,
    env: &QueryEnv<'_>,
    genv: &GraphEnv<'_>,
) -> Result<Value> {
    let len = match target {
        PathTarget::Edges => path.edges.len(),
        PathTarget::Vertexes => path.vertexes.len(),
    } as u64;
    // Determine the positions the predicate quantifies over. `[i]` and
    // `[i..j]` require the positions to exist; `[i..*]` is vacuous when the
    // path is shorter (length inference normally guarantees existence).
    let (lo, hi) = match end {
        IndexEnd::At => {
            if start >= len {
                return Ok(Value::Boolean(false));
            }
            (start, start)
        }
        IndexEnd::Bounded(e) => {
            if e >= len || start > e {
                return Ok(Value::Boolean(false));
            }
            (start, e)
        }
        IndexEnd::Star => {
            if start >= len {
                // `[0..*]` over an empty element list is vacuously true;
                // `[k..*]` with k ≥ 1 requires position k to exist (the
                // paper's §6.1 reading: `Edges[5..*]` implies length ≥ 6).
                return Ok(Value::Boolean(start == 0));
            }
            (start, len - 1)
        }
    };
    // Pre-evaluate the right-hand side(s) once per row.
    let rhs_vals: Vec<Value> = match test {
        QuantTest::Cmp { rhs, .. } => vec![rhs.eval(row, env)?],
        QuantTest::In { list, .. } => list
            .iter()
            .map(|e| e.eval(row, env))
            .collect::<Result<_>>()?,
    };
    for pos in lo..=hi {
        let v = match target {
            PathTarget::Edges => genv.path_edge_attr(path, pos as usize, attr)?,
            PathTarget::Vertexes => genv.path_vertex_attr(path, pos as usize, attr)?,
        };
        let ok = match test {
            QuantTest::Cmp { op, .. } => op.test(v.sql_cmp(&rhs_vals[0])).is_truthy(),
            QuantTest::In { negated, .. } => {
                let any = rhs_vals.iter().any(|rv| v.sql_eq(rv) == Some(true));
                any != *negated
            }
        };
        if !ok {
            return Ok(Value::Boolean(false));
        }
    }
    Ok(Value::Boolean(true))
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile an AST expression against a namespace. Group aggregates are NOT
/// allowed here — the planner rewrites them before compilation; a stray one
/// is an analysis error.
pub fn compile(expr: &Expr, ns: &Namespace) -> Result<PhysExpr> {
    match expr {
        Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
        Expr::Parameter(i) => Ok(PhysExpr::Param { index: *i as usize }),
        Expr::CompoundRef(parts) => compile_ref(parts, ns),
        Expr::Unary { op, expr } => {
            let inner = compile(expr, ns)?;
            Ok(match op {
                UnaryOp::Not => PhysExpr::Not(Box::new(inner)),
                UnaryOp::Neg => PhysExpr::Neg(Box::new(inner)),
            })
        }
        Expr::Binary { left, op, right } => compile_binary(left, *op, right, ns),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            // Range-ref IN list → quantified predicate.
            if let Some((col, target, start, end, attr)) = as_range_ref(expr, ns)? {
                let list = list
                    .iter()
                    .map(|e| compile(e, ns))
                    .collect::<Result<Vec<_>>>()?;
                return Ok(PhysExpr::Quant {
                    col,
                    target,
                    start,
                    end,
                    attr,
                    test: QuantTest::In {
                        list,
                        negated: *negated,
                    },
                });
            }
            Ok(PhysExpr::InList {
                expr: Box::new(compile(expr, ns)?),
                list: list
                    .iter()
                    .map(|e| compile(e, ns))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(PhysExpr::Between {
            expr: Box::new(compile(expr, ns)?),
            low: Box::new(compile(low, ns)?),
            high: Box::new(compile(high, ns)?),
            negated: *negated,
        }),
        Expr::InSubquery { .. } => Err(Error::analysis(
            "IN (SELECT ...) subqueries must be folded before compilation \
             (unsupported in this context, e.g. DML WHERE clauses)",
        )),
        Expr::Function { name, args, star } => {
            if *star {
                return Err(Error::analysis(format!(
                    "aggregate {name}(*) is only allowed in SELECT/HAVING clauses"
                )));
            }
            let Some(func) = AggFunc::parse(name) else {
                return Err(Error::analysis(format!("unknown function `{name}`")));
            };
            // Path aggregate: FUNC(PS.Edges.attr) / FUNC(PS.Vertexes.attr)
            if args.len() == 1 {
                if let Some(pa) = as_path_agg(&args[0], func, ns)? {
                    return Ok(pa);
                }
            }
            Err(Error::analysis(format!(
                "aggregate {name}(...) is only allowed in SELECT/HAVING clauses"
            )))
        }
    }
}

fn compile_binary(left: &Expr, op: BinaryOp, right: &Expr, ns: &Namespace) -> Result<PhysExpr> {
    if let Some(cmp) = CmpOp::from_binary(op) {
        // Quantified forms: range-ref on either side.
        if let Some((col, target, start, end, attr)) = as_range_ref(left, ns)? {
            let rhs = compile(right, ns)?;
            return Ok(PhysExpr::Quant {
                col,
                target,
                start,
                end,
                attr,
                test: QuantTest::Cmp {
                    op: cmp,
                    rhs: Box::new(rhs),
                },
            });
        }
        if let Some((col, target, start, end, attr)) = as_range_ref(right, ns)? {
            let flipped = match cmp {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::LtEq => CmpOp::GtEq,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::GtEq => CmpOp::LtEq,
                other => other,
            };
            let rhs = compile(left, ns)?;
            return Ok(PhysExpr::Quant {
                col,
                target,
                start,
                end,
                attr,
                test: QuantTest::Cmp {
                    op: flipped,
                    rhs: Box::new(rhs),
                },
            });
        }
        return Ok(PhysExpr::Cmp {
            op: cmp,
            left: Box::new(compile(left, ns)?),
            right: Box::new(compile(right, ns)?),
        });
    }
    let l = Box::new(compile(left, ns)?);
    let r = Box::new(compile(right, ns)?);
    Ok(match op {
        BinaryOp::And => PhysExpr::And(l, r),
        BinaryOp::Or => PhysExpr::Or(l, r),
        BinaryOp::Add => PhysExpr::Arith {
            op: ArithOp::Add,
            left: l,
            right: r,
        },
        BinaryOp::Sub => PhysExpr::Arith {
            op: ArithOp::Sub,
            left: l,
            right: r,
        },
        BinaryOp::Mul => PhysExpr::Arith {
            op: ArithOp::Mul,
            left: l,
            right: r,
        },
        BinaryOp::Div => PhysExpr::Arith {
            op: ArithOp::Div,
            left: l,
            right: r,
        },
        BinaryOp::Mod => PhysExpr::Arith {
            op: ArithOp::Mod,
            left: l,
            right: r,
        },
        _ => {
            return Err(Error::plan(
                "comparison operator reached arithmetic lowering",
            ))
        }
    })
}

/// Decomposed range reference: `(path column, target, start, end, attr)`.
type RangeRef = (usize, PathTarget, u64, IndexEnd, String);

/// If `expr` is a range reference `p.Edges[a..b].attr` (or `Vertexes`),
/// return its pieces. Single-index `[i]` refs are scalars, not ranges.
fn as_range_ref(expr: &Expr, ns: &Namespace) -> Result<Option<RangeRef>> {
    let Expr::CompoundRef(parts) = expr else {
        return Ok(None);
    };
    if parts.len() != 3 {
        return Ok(None);
    }
    let Some(binding) = ns.binding(&parts[0].name) else {
        return Ok(None);
    };
    let BindingKind::Paths(_) = &binding.kind else {
        return Ok(None);
    };
    let target = match parts[1].name.to_ascii_lowercase().as_str() {
        "edges" => PathTarget::Edges,
        "vertexes" | "vertices" => PathTarget::Vertexes,
        _ => return Ok(None),
    };
    let Some(range) = parts[1].index else {
        return Ok(None);
    };
    if range.end == IndexEnd::At {
        return Ok(None); // scalar indexed ref
    }
    if parts[2].index.is_some() {
        return Err(Error::analysis(
            "nested indexing on path attributes is not supported",
        ));
    }
    Ok(Some((
        binding.offset,
        target,
        range.start,
        range.end,
        parts[2].name.to_ascii_lowercase(),
    )))
}

/// If `expr` is `p.Edges.attr` / `p.Vertexes.attr` (no index), compile the
/// scalar path aggregate.
fn as_path_agg(expr: &Expr, func: AggFunc, ns: &Namespace) -> Result<Option<PhysExpr>> {
    let Expr::CompoundRef(parts) = expr else {
        return Ok(None);
    };
    // COUNT(p) over a path binding is handled by the planner as a group
    // aggregate; here we only handle the 3-part attribute form.
    if parts.len() != 3 || parts.iter().any(|p| p.index.is_some()) {
        return Ok(None);
    }
    let Some(binding) = ns.binding(&parts[0].name) else {
        return Ok(None);
    };
    let BindingKind::Paths(graph) = &binding.kind else {
        return Ok(None);
    };
    let target = match parts[1].name.to_ascii_lowercase().as_str() {
        "edges" => PathTarget::Edges,
        "vertexes" | "vertices" => PathTarget::Vertexes,
        _ => return Ok(None),
    };
    let attr = parts[2].name.to_ascii_lowercase();
    let meta = ns.graph_meta(graph)?;
    let attr_ty = match target {
        PathTarget::Edges => meta.edge_attr_type(&attr)?,
        PathTarget::Vertexes => meta.vertex_attr_type(&attr)?,
    };
    let ty = match func {
        AggFunc::Count => DataType::Integer,
        AggFunc::Avg => DataType::Double,
        _ => attr_ty,
    };
    Ok(Some(PhysExpr::PathAgg {
        col: binding.offset,
        target,
        attr,
        func,
        ty,
    }))
}

fn compile_ref(parts: &[RefPart], ns: &Namespace) -> Result<PhysExpr> {
    // Single part: a binding reference (paths → whole path) or an
    // unqualified column.
    if parts.len() == 1 && parts[0].index.is_none() {
        let name = &parts[0].name;
        if let Some(b) = ns.binding(name) {
            return match &b.kind {
                BindingKind::Paths(_) => Ok(PhysExpr::PathProp {
                    col: b.offset,
                    prop: PathProp::Whole,
                    ty: DataType::Path,
                }),
                _ => Err(Error::analysis(format!(
                    "binding `{name}` cannot be used as a value; select its columns"
                ))),
            };
        }
        let (index, ty) = ns.resolve_unqualified(name)?;
        return Ok(PhysExpr::Column { index, ty });
    }

    // Multi-part: the head must be a binding.
    let head = &parts[0];
    if head.index.is_some() {
        return Err(Error::analysis(format!(
            "cannot index binding `{}` directly",
            head.name
        )));
    }
    let Some(binding) = ns.binding(&head.name) else {
        // Fall back: maybe `col.prop`? Not supported — clear error.
        return Err(Error::analysis(format!(
            "unknown binding `{}` in reference",
            head.name
        )));
    };
    match binding.kind.clone() {
        BindingKind::Table(_) | BindingKind::Vertexes(_) | BindingKind::Edges(_) => {
            if parts.len() != 2 || parts[1].index.is_some() {
                return Err(Error::analysis(format!(
                    "invalid column reference on binding `{}`",
                    head.name
                )));
            }
            let i = binding.schema.resolve(&parts[1].name)?;
            Ok(PhysExpr::Column {
                index: binding.offset + i,
                ty: binding.schema.column(i).data_type,
            })
        }
        BindingKind::Paths(graph) => compile_path_ref(binding, &graph, parts, ns),
    }
}

fn compile_path_ref(
    binding: &Binding,
    graph: &str,
    parts: &[RefPart],
    ns: &Namespace,
) -> Result<PhysExpr> {
    let col = binding.offset;
    let meta = ns.graph_meta(graph)?;
    let seg = parts[1].name.to_ascii_lowercase();
    let mk = |prop: PathProp, ty: DataType| PhysExpr::PathProp { col, prop, ty };

    match seg.as_str() {
        "length" => Ok(mk(PathProp::Length, DataType::Integer)),
        "pathstring" => Ok(mk(PathProp::PathString, DataType::Varchar)),
        "cost" | "totalcost" => Ok(mk(PathProp::Cost, DataType::Double)),
        "startvertexid" => Ok(mk(PathProp::StartVertexId, DataType::Integer)),
        "endvertexid" => Ok(mk(PathProp::EndVertexId, DataType::Integer)),
        "startvertex" | "endvertex" => {
            let is_start = seg == "startvertex";
            if parts.len() == 2 {
                // bare `PS.EndVertex` — the vertex id
                return Ok(mk(
                    if is_start {
                        PathProp::StartVertexId
                    } else {
                        PathProp::EndVertexId
                    },
                    DataType::Integer,
                ));
            }
            if parts.len() != 3 || parts[2].index.is_some() {
                return Err(Error::analysis(
                    "expected `.attribute` after StartVertex/EndVertex",
                ));
            }
            let attr = parts[2].name.to_ascii_lowercase();
            if attr == "id" {
                return Ok(mk(
                    if is_start {
                        PathProp::StartVertexId
                    } else {
                        PathProp::EndVertexId
                    },
                    DataType::Integer,
                ));
            }
            let ty = meta.vertex_attr_type(&attr)?;
            Ok(mk(
                if is_start {
                    PathProp::StartVertexAttr(attr)
                } else {
                    PathProp::EndVertexAttr(attr)
                },
                ty,
            ))
        }
        "edges" | "vertexes" | "vertices" => {
            let is_edges = seg == "edges";
            let Some(range) = parts[1].index else {
                return Err(Error::analysis(format!(
                    "`{}.{}` requires an index (ranges are only valid in predicates, \
                     bare element lists only inside aggregates)",
                    parts[0].name, parts[1].name
                )));
            };
            if range.end != IndexEnd::At {
                return Err(Error::analysis(format!(
                    "range reference `{}.{}[{}..]` is only valid as a predicate operand",
                    parts[0].name, parts[1].name, range.start
                )));
            }
            let i = range.start;
            if parts.len() == 2 {
                return Ok(mk(
                    if is_edges {
                        PathProp::EdgeIdAt(i)
                    } else {
                        PathProp::VertexIdAt(i)
                    },
                    DataType::Integer,
                ));
            }
            if parts.len() != 3 || parts[2].index.is_some() {
                return Err(Error::analysis("invalid indexed path reference"));
            }
            let attr = parts[2].name.to_ascii_lowercase();
            let ty = if is_edges {
                meta.edge_attr_type(&attr)?
            } else {
                meta.vertex_attr_type(&attr)?
            };
            Ok(mk(
                if is_edges {
                    PathProp::EdgeAttrAt(i, attr)
                } else {
                    PathProp::VertexAttrAt(i, attr)
                },
                ty,
            ))
        }
        other => Err(Error::analysis(format!(
            "unknown path property `{other}` on `{}`",
            parts[0].name
        ))),
    }
}
