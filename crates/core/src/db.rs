//! The `Database` facade: GRFusion's public API.
//!
//! One object owns the catalog, the graph views, and the transaction state,
//! and executes SQL statements **serially** — the H-Store/VoltDB
//! single-partition execution model the paper builds on (§7.2 credits part
//! of GRFusion's speedups to this lock-free-by-construction concurrency
//! model). `Database` is `Send + Sync`; concurrent callers simply queue on
//! the internal mutex.

use std::collections::HashMap;
use std::sync::Arc;

use grfusion_common::{Column, DataType, Error, Result, Schema, Value};
use grfusion_graph::GraphStats;
use grfusion_sql::{parse_statement, parse_statements, CreateIndex, CreateTable, Statement, TypeName};
use grfusion_storage::{Catalog, IndexKind, Table};
use crate::lockorder::{LockClass, OrderedMutex};

use crate::config::EngineConfig;
use crate::dml::{self, DmlCtx, Journal};
use crate::env::{GraphEnv, QueryEnv};
use crate::epoch::{self, DirtySet, EpochHub, EpochView, ReaderShared};
use crate::exec::{execute_plan, execute_plan_with_metrics};
use crate::governor::{CancelToken, ExecContext, FaultPlan, FaultState};
use crate::expr::GraphMeta;
use crate::graph_view::{GraphView, GraphViewDef};
use crate::planner::{plan_select, PlannerCtx};
use crate::result::ResultSet;

struct DbInner {
    catalog: Catalog,
    /// Lowercase graph-view name → view object (singleton topology).
    graph_views: HashMap<String, GraphView>,
    /// Lowercase table name → graph views sourcing from it (§3.3: each
    /// relational source knows the views it feeds).
    source_map: HashMap<String, Vec<String>>,
    config: EngineConfig,
    /// Journal of the open explicit transaction, if any.
    txn: Option<Journal>,
    /// Cached planner context — schemas and graph metadata only change on
    /// DDL, so queries reuse it (VoltDB-style pre-compiled metadata; DDL
    /// invalidates).
    plan_ctx: Option<Arc<PlannerCtx>>,
    /// Cancellation token, created lazily the first time a caller asks for
    /// one. While no token has been handed out, queries run with no cancel
    /// flag at all, so the governor stays inactive (zero overhead) unless a
    /// deadline or memory cap is also configured.
    cancel: Option<CancelToken>,
    /// Fault-injection state shared by all statements (hit counters persist
    /// across statements so a retried statement runs past a spent rule).
    faults: Option<Arc<FaultState>>,
    /// A malformed `GRFUSION_FAULTS` value, surfaced on first use rather
    /// than silently disabling the sweep.
    faults_err: Option<String>,
    /// A malformed `GRFUSION_*` engine knob (workers, batch, reseal, ...),
    /// surfaced on the first statement rather than silently degrading to
    /// defaults. Cleared by `set_config` (an explicit config supersedes
    /// whatever the environment asked for).
    env_err: Option<String>,
}

impl DbInner {
    /// Build the per-query resource governor from the current config plus
    /// the database-level cancel token (armed from now, so a past cancel
    /// never bleeds into this query), the calling thread's ambient request
    /// scope, and the fault plan.
    fn exec_context(&self) -> Result<ExecContext> {
        if let Some(msg) = self.env_err.as_ref().or(self.faults_err.as_ref()) {
            return Err(Error::analysis(msg.clone()));
        }
        Ok(ExecContext::for_query(
            &self.config.governor,
            self.cancel.as_ref(),
            self.faults.clone(),
        ))
    }
}

/// An in-memory relational database with native graph support.
pub struct Database {
    inner: OrderedMutex<DbInner>,
    /// Epoch publication point. Lives *outside* `inner`: epoch readers pin
    /// the current snapshot through the hub's tiny mutex and never contend
    /// with the writer holding `inner`.
    hub: EpochHub,
}

/// A compiled SELECT statement (see [`Database::prepare`]).
pub struct PreparedQuery {
    plan: crate::plan::PlanNode,
    /// Per-node cost-model estimates, captured at prepare time when the
    /// cost-based optimizer is enabled (`None` on the rule-based path).
    estimates: Option<Vec<crate::cost::NodeEstimate>>,
    /// Cost-model pipeline choice frozen into the stored plan.
    prefer_row: bool,
}

impl PreparedQuery {
    /// EXPLAIN-style plan text. When the plan was prepared under the
    /// cost-based optimizer each line carries its cardinality estimate.
    pub fn explain(&self) -> String {
        let text = self.plan.explain();
        match &self.estimates {
            Some(est) => crate::cost::annotate_explain(&text, est),
            None => text,
        }
    }
}

/// A planned SELECT plus whatever the cost-based optimizer decided about
/// it. On the rule-based path (`GRFUSION_OPTIMIZER=0`, the default) the
/// plan passes through untouched and `estimates` stays `None`, keeping
/// every downstream byte identical.
struct CostedPlan {
    plan: crate::plan::PlanNode,
    estimates: Option<Vec<crate::cost::NodeEstimate>>,
    prefer_row: bool,
}

/// Run the cost-based optimizer over a rule-based plan if it is enabled.
fn cost_plan(
    inner: &DbInner,
    ctx: &PlannerCtx,
    plan: crate::plan::PlanNode,
) -> Result<CostedPlan> {
    if !inner.config.optimizer.cost_based {
        return Ok(CostedPlan {
            plan,
            estimates: None,
            prefer_row: false,
        });
    }
    let catalog = cost_catalog(inner)?;
    let o = crate::cost::optimize(plan, &catalog, &ctx.graphs, &ctx.tables, &ctx.hash_indexed)?;
    Ok(CostedPlan {
        plan: o.plan,
        estimates: Some(o.estimates),
        prefer_row: o.prefer_row_pipeline,
    })
}

/// Snapshot live table/topology statistics for the cost model.
fn cost_catalog(inner: &DbInner) -> Result<crate::cost::CostCatalog> {
    let mut cat = crate::cost::CostCatalog::new();
    for name in inner.catalog.table_names() {
        let handle = inner.catalog.table(&name)?;
        let t = handle.read();
        cat.add_table(&name, t.stats(), t.column_ndvs());
    }
    for (name, view) in &inner.graph_views {
        cat.add_graph(name, view.topology.read().stats());
    }
    Ok(cat)
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Create an empty database with default configuration.
    pub fn new() -> Database {
        Database::with_config(EngineConfig::default())
    }

    /// Create an empty database with a custom configuration (used by the
    /// benchmark harness for optimizer ablations and resource limits).
    pub fn with_config(config: EngineConfig) -> Database {
        // A malformed GRFUSION_FAULTS is remembered and surfaced on the
        // first statement: `with_config` is infallible, but a typo in a
        // fault sweep must not silently run with injection disabled.
        let (faults, faults_err) = match FaultPlan::from_env() {
            Ok(plan) => (plan.map(|p| Arc::new(FaultState::new(p))), None),
            Err(e) => (None, Some(e.to_string())),
        };
        // Same contract for the engine knobs: a typo'd GRFUSION_WORKERS
        // must fail the first statement, not silently run serial.
        let env_err = EngineConfig::env_error();
        let db = Database {
            inner: OrderedMutex::new(LockClass::DbInner, DbInner {
                catalog: Catalog::new(),
                graph_views: HashMap::new(),
                source_map: HashMap::new(),
                config,
                txn: None,
                plan_ctx: None,
                cancel: None,
                faults: faults.clone(),
                faults_err: faults_err.clone(),
                env_err: env_err.clone(),
            }),
            hub: EpochHub::new(
                ReaderShared {
                    config,
                    cancel: None,
                    faults,
                    faults_err,
                    env_err,
                },
                config.epochs.enabled,
            ),
        };
        if config.epochs.enabled {
            // Publish epoch 0 (the empty catalog) so readers always have a
            // snapshot to pin.
            let mut inner = db.inner.lock();
            let _ = publish_epoch(&db.hub, &mut inner, None);
            drop(inner);
        }
        db
    }

    /// Handle for cancelling in-flight queries from another thread.
    /// Cancellation is edge-triggered: [`CancelToken::cancel`] aborts the
    /// queries running *at that moment* and nothing issued afterwards — a
    /// pooled connection's next query is unaffected. Creating the token is
    /// what arms the cooperative checks; a database nobody can cancel pays
    /// nothing for the feature.
    pub fn cancel_token(&self) -> CancelToken {
        let token = self
            .inner
            .lock()
            .cancel
            .get_or_insert_with(CancelToken::default)
            .clone();
        let mirror = token.clone();
        self.hub.update_shared(move |s| s.cancel = Some(mirror));
        token
    }

    /// Install (or with `None` clear) a deterministic fault-injection plan.
    /// Replaces any plan read from `GRFUSION_FAULTS` and resets all hit
    /// counters.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut inner = self.inner.lock();
        inner.faults = plan.map(|p| Arc::new(FaultState::new(p)));
        inner.faults_err = None;
        let faults = inner.faults.clone();
        self.hub.update_shared(move |s| {
            s.faults = faults;
            s.faults_err = None;
        });
    }

    /// Replace the engine configuration (takes effect on the next
    /// statement).
    pub fn set_config(&self, config: EngineConfig) {
        let mut inner = self.inner.lock();
        inner.config = config;
        inner.env_err = None;
        self.hub.update_shared(|s| {
            s.config = config;
            s.env_err = None;
        });
        self.hub.set_enabled(config.epochs.enabled);
        // (Re)publish immediately so readers see the current committed
        // state under the new configuration — this is also how enabling
        // epochs mid-session seeds the first snapshot.
        if config.epochs.enabled && inner.txn.is_none() {
            let _ = publish_epoch(&self.hub, &mut inner, None);
        }
    }

    /// Current configuration.
    pub fn config(&self) -> EngineConfig {
        self.inner.lock().config
    }

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> Result<ResultSet> {
        let stmts = parse_statements(sql)?;
        let mut last = ResultSet::empty();
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Execute one SQL statement under per-request options: a wall-clock
    /// deadline (tightening — never loosening — the configured governor
    /// deadline) and a request-scoped cancel token a front-end trips on
    /// client disconnect. This is the network server's entry point; the
    /// options hold for the whole statement, including subquery folding.
    pub fn execute_with_request(
        &self,
        sql: &str,
        opts: &crate::governor::RequestOptions,
    ) -> Result<ResultSet> {
        let _guard = crate::governor::enter_request(opts);
        self.execute(sql)
    }

    /// [`Database::execute_script`] under per-request options; the whole
    /// script shares one deadline budget.
    pub fn execute_script_with_request(
        &self,
        sql: &str,
        opts: &crate::governor::RequestOptions,
    ) -> Result<ResultSet> {
        let _guard = crate::governor::enter_request(opts);
        self.execute_script(sql)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<ResultSet> {
        // Epoch read path: pin the current published snapshot and run the
        // whole query against it without ever taking the writer's lock.
        match stmt {
            Statement::Select(select) => {
                if let Some(ep) = self.hub.pin() {
                    return epoch::run_select_epoch(&self.hub, &ep, select, false);
                }
            }
            Statement::Explain {
                analyze: true,
                select,
            } => {
                if let Some(ep) = self.hub.pin() {
                    return epoch::explain_analyze_epoch(&self.hub, &ep, select);
                }
            }
            _ => {}
        }
        let mut inner = self.inner.lock();
        match stmt {
            Statement::Select(select) => {
                let ctx = cached_planner_ctx(&mut inner)?;
                run_select(&inner, select, &ctx)
            }
            Statement::Explain { analyze, select } => {
                let ctx = cached_planner_ctx(&mut inner)?;
                let select = fold_subqueries(&inner, select, &ctx)?;
                let plan = plan_select(&select, &ctx, &inner.config.optimizer)?;
                let costed = cost_plan(&inner, &ctx, plan)?;
                let plan_schema = Arc::new(Schema::new(vec![Column::new(
                    "plan",
                    DataType::Varchar,
                )]));
                if *analyze {
                    // Run the query with instrumentation, discard its rows,
                    // and return the annotated plan tree instead.
                    let rs = run_plan(&inner, &costed.plan, Vec::new(), true, costed.prefer_row)?;
                    let Some(mut metrics) = rs.metrics else {
                        return Err(Error::execution("instrumented run returned no metrics"));
                    };
                    if let Some(est) = &costed.estimates {
                        metrics.attach_estimates(est);
                    }
                    let rows = metrics
                        .render()
                        .lines()
                        .map(|l| vec![Value::text(l)])
                        .collect();
                    Ok(ResultSet {
                        schema: plan_schema,
                        rows,
                        rows_affected: 0,
                        metrics: Some(metrics),
                    })
                } else {
                    let text = crate::analyze::explain_typed(&costed.plan);
                    let text = match &costed.estimates {
                        Some(est) => crate::cost::annotate_explain(&text, est),
                        None => text,
                    };
                    let rows = text
                        .lines()
                        .map(|l| vec![Value::text(l)])
                        .collect();
                    Ok(ResultSet {
                        schema: plan_schema,
                        rows,
                        rows_affected: 0,
                        metrics: None,
                    })
                }
            }
            Statement::CreateTable(ct) => {
                create_table(&mut inner, ct)?;
                inner.plan_ctx = None;
                self.publish_after_ddl(&mut inner)?;
                Ok(ResultSet::empty())
            }
            Statement::CreateIndex(ci) => {
                create_index(&inner, ci)?;
                inner.plan_ctx = None;
                self.publish_after_ddl(&mut inner)?;
                Ok(ResultSet::empty())
            }
            Statement::CreateGraphView(cgv) => {
                create_graph_view(&mut inner, cgv)?;
                inner.plan_ctx = None;
                self.publish_after_ddl(&mut inner)?;
                Ok(ResultSet::empty())
            }
            Statement::DropTable { name } => {
                drop_table(&mut inner, name)?;
                inner.plan_ctx = None;
                self.publish_after_ddl(&mut inner)?;
                Ok(ResultSet::empty())
            }
            Statement::DropGraphView { name } => {
                drop_graph_view(&mut inner, name)?;
                inner.plan_ctx = None;
                self.publish_after_ddl(&mut inner)?;
                Ok(ResultSet::empty())
            }
            Statement::Insert(ins) => match &ins.source {
                grfusion_sql::InsertSource::Values(_) => run_dml(&self.hub, &mut inner, |ctx, journal| {
                    dml::execute_insert(ctx, journal, ins)
                }),
                grfusion_sql::InsertSource::Select(select) => {
                    // INSERT ... SELECT: materialize the query first (the
                    // engine is serial, so this is a consistent snapshot),
                    // then insert through the normal maintenance path.
                    let ctx = cached_planner_ctx(&mut inner)?;
                    let rs = run_select(&inner, select, &ctx)?;
                    run_dml(&self.hub, &mut inner, |ctx, journal| {
                        dml::execute_insert_rows(ctx, journal, &ins.table, &ins.columns, rs.rows)
                    })
                }
            },
            Statement::Update(upd) => {
                let mut upd = upd.clone();
                if let Some(sel) = &mut upd.selection {
                    let ctx = cached_planner_ctx(&mut inner)?;
                    fold_expr_subqueries(&inner, sel, &ctx)?;
                }
                run_dml(&self.hub, &mut inner, move |ctx, journal| {
                    dml::execute_update(ctx, journal, &upd)
                })
            }
            Statement::Delete(del) => {
                let mut del = del.clone();
                if let Some(sel) = &mut del.selection {
                    let ctx = cached_planner_ctx(&mut inner)?;
                    fold_expr_subqueries(&inner, sel, &ctx)?;
                }
                run_dml(&self.hub, &mut inner, move |ctx, journal| {
                    dml::execute_delete(ctx, journal, &del)
                })
            }
            Statement::Begin => {
                if inner.txn.is_some() {
                    return Err(Error::transaction("transaction already in progress"));
                }
                inner.txn = Some(Journal::new());
                // Reads now need the locked path to observe their own
                // uncommitted writes; readers pinning the previous epoch
                // keep seeing the last committed state (snapshot isolation).
                self.hub.set_txn_open(true);
                Ok(ResultSet::empty())
            }
            Statement::Commit => {
                if inner.txn.take().is_none() {
                    return Err(Error::transaction("no transaction in progress"));
                }
                self.hub.set_txn_open(false);
                // The whole transaction becomes visible in one publication
                // (full snapshot: mid-transaction DDL is not journaled).
                if self.hub.enabled() {
                    publish_epoch(&self.hub, &mut inner, None)?;
                }
                Ok(ResultSet::empty())
            }
            Statement::Rollback => {
                let Some(mut journal) = inner.txn.take() else {
                    return Err(Error::transaction("no transaction in progress"));
                };
                {
                    let inner = &mut *inner;
                    let ctx = DmlCtx {
                        catalog: &inner.catalog,
                        graph_views: &inner.graph_views,
                        source_map: &inner.source_map,
                        // Rollback is the recovery path: never inject into
                        // it, and never let a cancel/deadline interrupt it.
                        faults: None,
                        gov: None,
                    };
                    journal.rollback_to(&ctx, 0)?;
                }
                self.hub.set_txn_open(false);
                // DML was undone, but DDL survives a rollback — republish
                // so readers see the post-rollback catalog.
                if self.hub.enabled() {
                    publish_epoch(&self.hub, &mut inner, None)?;
                }
                Ok(ResultSet::empty())
            }
        }
    }

    /// Bulk-insert pre-built rows into a table (loader fast path; maintains
    /// graph views and transactional semantics exactly like SQL INSERT).
    pub fn bulk_insert(&self, table: &str, rows: Vec<grfusion_common::Row>) -> Result<u64> {
        let mut inner = self.inner.lock();
        let rs = run_dml(&self.hub, &mut inner, |ctx, journal| {
            dml::execute_bulk_insert(ctx, journal, table, rows)
        })?;
        Ok(rs.rows_affected)
    }

    /// Prepare a SELECT statement with `?` parameter placeholders.
    ///
    /// Parsing and planning happen once; each [`Database::execute_prepared`]
    /// call only binds parameters and runs the stored plan — the stored
    /// procedure execution model of VoltDB, which is how the paper's system
    /// avoids per-query SQL processing (§7.2). The plan snapshots the
    /// current catalog: running it after dropping a referenced table or
    /// graph view fails at execution time.
    ///
    /// Planner analyses that need literal values (path-length inference,
    /// §6.1) cannot see through `?`; put length bounds inline and
    /// parameterize the rest.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = &stmt else {
            return Err(Error::analysis("only SELECT statements can be prepared"));
        };
        let mut inner = self.inner.lock();
        let ctx = cached_planner_ctx(&mut inner)?;
        // Subqueries fold at prepare time: their results are frozen into
        // the stored plan (documented prepared-statement semantics).
        let select = fold_subqueries(&inner, select, &ctx)?;
        let plan = plan_select(&select, &ctx, &inner.config.optimizer)?;
        let costed = cost_plan(&inner, &ctx, plan)?;
        Ok(PreparedQuery {
            plan: costed.plan,
            estimates: costed.estimates,
            prefer_row: costed.prefer_row,
        })
    }

    /// Execute a prepared query with the given parameter values (bound to
    /// the `?` placeholders in order of appearance).
    pub fn execute_prepared(
        &self,
        query: &PreparedQuery,
        params: &[grfusion_common::Value],
    ) -> Result<ResultSet> {
        if let Some(ep) = self.hub.pin() {
            return epoch::run_plan_epoch(
                &self.hub,
                &ep,
                &query.plan,
                params.to_vec(),
                false,
                query.prefer_row,
            );
        }
        let inner = self.inner.lock();
        run_plan(&inner, &query.plan, params.to_vec(), false, query.prefer_row)
    }

    /// Execute a SELECT with per-operator instrumentation. The result
    /// carries the query's normal rows *and* `metrics: Some(..)` — the
    /// programmatic twin of `EXPLAIN ANALYZE` (used by the bench harness
    /// to emit per-operator stats alongside timings).
    pub fn execute_with_metrics(&self, sql: &str) -> Result<ResultSet> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = &stmt else {
            return Err(Error::analysis(
                "execute_with_metrics supports SELECT statements only",
            ));
        };
        if let Some(ep) = self.hub.pin() {
            return epoch::run_select_epoch(&self.hub, &ep, select, true);
        }
        let mut inner = self.inner.lock();
        let ctx = cached_planner_ctx(&mut inner)?;
        let select = fold_subqueries(&inner, select, &ctx)?;
        let plan = plan_select(&select, &ctx, &inner.config.optimizer)?;
        let costed = cost_plan(&inner, &ctx, plan)?;
        let mut rs = run_plan(&inner, &costed.plan, Vec::new(), true, costed.prefer_row)?;
        if let (Some(m), Some(est)) = (rs.metrics.as_mut(), &costed.estimates) {
            m.attach_estimates(est);
        }
        Ok(rs)
    }

    /// EXPLAIN-style plan text for a SELECT statement.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = &stmt else {
            return Err(Error::analysis("EXPLAIN supports SELECT statements only"));
        };
        let inner = self.inner.lock();
        let ctx = planner_ctx(&inner)?;
        let select = fold_subqueries(&inner, select, &ctx)?;
        let plan = plan_select(&select, &ctx, &inner.config.optimizer)?;
        let costed = cost_plan(&inner, &ctx, plan)?;
        let text = crate::analyze::explain_typed(&costed.plan);
        Ok(match &costed.estimates {
            Some(est) => crate::cost::annotate_explain(&text, est),
            None => text,
        })
    }

    /// Statistics of a graph view's materialized topology (vertex/edge
    /// counts, average fan-out, approximate memory — the §6.3 catalog
    /// statistic plus the build-cost experiment's memory number).
    pub fn graph_stats(&self, name: &str) -> Result<GraphStats> {
        let inner = self.inner.lock();
        let view = inner
            .graph_views
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::catalog(format!("graph view `{name}` does not exist")))?;
        let mut stats = view.topology.read().stats();
        let (live_epochs, retained_bytes) = self.hub.live_stats();
        stats.live_epochs = live_epochs;
        stats.retained_bytes = retained_bytes;
        Ok(stats)
    }

    /// Names of all graph views (sorted).
    pub fn graph_view_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.graph_views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.inner.lock().catalog.table_names()
    }

    /// Row count of a table.
    pub fn table_len(&self, name: &str) -> Result<usize> {
        let inner = self.inner.lock();
        Ok(inner.catalog.table(name)?.read().len())
    }

    /// Deterministic dump of all observable state: every table's rows (with
    /// their stable row ids) and every graph view's topology, each sorted so
    /// the text is independent of iteration order. The robustness battery
    /// snapshots this before and after a fault-injected statement: equal
    /// dumps prove the statement was all-or-nothing across storage, indexes,
    /// and topologies.
    pub fn state_dump(&self) -> Result<String> {
        // With epochs on, dump the pinned snapshot: safe from any reader
        // thread, never blocks on (or observes partial work of) the writer.
        if let Some(ep) = self.hub.pin() {
            return Ok(epoch::state_dump_epoch(&ep));
        }
        let inner = self.inner.lock();
        let mut out = String::new();
        for name in inner.catalog.table_names() {
            let handle = inner.catalog.table(&name)?;
            let t = handle.read();
            let mut rows: Vec<(u64, String)> = t
                .scan()
                .map(|(id, row)| {
                    let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    (id.0, vals.join(","))
                })
                .collect();
            rows.sort_unstable();
            out.push_str(&format!("table {} rows={}\n", name, rows.len()));
            for (id, vals) in rows {
                out.push_str(&format!("r @{id} {vals}\n"));
            }
        }
        let mut names: Vec<&String> = inner.graph_views.keys().collect();
        names.sort();
        for n in names {
            out.push_str(&inner.graph_views[n].topology_dump());
        }
        Ok(out)
    }

    /// Number of the currently published epoch (`None` when epoch
    /// publication is off or nothing has been published yet).
    pub fn current_epoch(&self) -> Option<u64> {
        self.hub.current_number()
    }

    /// Atomically pin the current epoch and dump it: `(epoch number, state
    /// dump)`. The concurrent differential oracle uses this to assert that
    /// every observed snapshot equals the serial state after some committed
    /// statement prefix. `None` when reads are not routing through epochs.
    pub fn snapshot_dump(&self) -> Option<(u64, String)> {
        let ep = self.hub.pin()?;
        Some((ep.number, epoch::state_dump_epoch(&ep)))
    }

    /// Pin the current epoch and hold it: the returned handle keeps the
    /// snapshot resident across any number of later writes until dropped.
    /// `None` when reads are not routing through epochs (publication off,
    /// or an explicit transaction is open on this connection).
    pub fn pin_snapshot(&self) -> Option<crate::epoch::EpochSnapshot> {
        self.hub.pin().map(|ep| crate::epoch::EpochSnapshot { ep })
    }

    /// `(live epochs, retained bytes)` — see [`GraphStats::live_epochs`].
    pub fn epoch_stats(&self) -> (usize, usize) {
        self.hub.live_stats()
    }

    /// Publish after a DDL statement (full snapshot: DDL changes the
    /// catalog shape, so nothing can be reused), unless a transaction is
    /// open — then visibility waits for COMMIT/ROLLBACK.
    fn publish_after_ddl(&self, inner: &mut DbInner) -> Result<()> {
        if self.hub.enabled() && inner.txn.is_none() {
            publish_epoch(&self.hub, inner, None)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

fn map_type(t: TypeName) -> DataType {
    match t {
        TypeName::Integer => DataType::Integer,
        TypeName::Double => DataType::Double,
        TypeName::Boolean => DataType::Boolean,
        TypeName::Varchar => DataType::Varchar,
    }
}

fn create_table(inner: &mut DbInner, ct: &CreateTable) -> Result<()> {
    if ct.columns.is_empty() {
        return Err(Error::analysis("CREATE TABLE requires at least one column"));
    }
    let schema = Schema::new(
        ct.columns
            .iter()
            .map(|c| grfusion_common::Column::new(c.name.to_ascii_lowercase(), map_type(c.data_type)))
            .collect(),
    );
    let mut table = Table::new(ct.name.clone(), schema);
    let pks: Vec<usize> = ct
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.primary_key)
        .map(|(i, _)| i)
        .collect();
    if pks.len() > 1 {
        return Err(Error::analysis("composite primary keys are not supported"));
    }
    if let Some(&pk) = pks.first() {
        table.create_index(
            format!("pk_{}", ct.name.to_ascii_lowercase()),
            pk,
            true,
            IndexKind::Hash,
        )?;
    }
    inner.catalog.create_table(table)?;
    Ok(())
}

fn create_index(inner: &DbInner, ci: &CreateIndex) -> Result<()> {
    let handle = inner.catalog.table(&ci.table)?;
    let mut table = handle.write();
    let col = table.schema().resolve(&ci.column)?;
    let kind = if ci.ordered {
        IndexKind::Ordered
    } else {
        IndexKind::Hash
    };
    table.create_index(ci.name.clone(), col, ci.unique, kind)
}

fn create_graph_view(inner: &mut DbInner, cgv: &grfusion_sql::CreateGraphView) -> Result<()> {
    let name = cgv.name.to_ascii_lowercase();
    if inner.graph_views.contains_key(&name) {
        return Err(Error::catalog(format!(
            "graph view `{}` already exists",
            cgv.name
        )));
    }
    let def = GraphViewDef::resolve(cgv, &inner.catalog)?;
    let view = GraphView::materialize(def, &inner.catalog)?;
    // Compact the freshly built adjacency into sealed CSR arrays right
    // away: materialization is the one moment the topology is complete and
    // overlay-free, so the seal is a straight copy.
    if inner.config.csr.sealed {
        view.topology.write().seal();
    }
    // Register the view with each of its sources (§3.3: a source knows the
    // views it feeds). A table used for both roles is registered once.
    let mut sources = vec![view.def.vertex_source.clone()];
    if view.def.edge_source != view.def.vertex_source {
        sources.push(view.def.edge_source.clone());
    }
    for s in sources {
        inner.source_map.entry(s).or_default().push(name.clone());
    }
    inner.graph_views.insert(name, view);
    Ok(())
}

fn drop_graph_view(inner: &mut DbInner, name: &str) -> Result<()> {
    let lower = name.to_ascii_lowercase();
    if inner.graph_views.remove(&lower).is_none() {
        return Err(Error::catalog(format!(
            "graph view `{name}` does not exist"
        )));
    }
    for views in inner.source_map.values_mut() {
        views.retain(|v| v != &lower);
    }
    inner.source_map.retain(|_, v| !v.is_empty());
    Ok(())
}

fn drop_table(inner: &mut DbInner, name: &str) -> Result<()> {
    let lower = name.to_ascii_lowercase();
    if let Some(views) = inner.source_map.get(&lower) {
        if !views.is_empty() {
            return Err(Error::constraint(format!(
                "table `{name}` is a relational source of graph view(s) {views:?}; drop them first"
            )));
        }
    }
    inner.catalog.drop_table(&lower)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// DML with transactions
// ---------------------------------------------------------------------------

fn run_dml<F>(hub: &EpochHub, inner: &mut DbInner, f: F) -> Result<ResultSet>
where
    F: FnOnce(&DmlCtx<'_>, &mut Journal) -> Result<u64>,
{
    let inner = &mut *inner;
    if let Some(msg) = inner.env_err.as_ref().or(inner.faults_err.as_ref()) {
        return Err(Error::analysis(msg.clone()));
    }
    // Governor context for cancellation/deadline checkpoints and re-seal
    // byte accounting, built up front because the transaction journal below
    // holds the only &mut into `inner`.
    let gov = inner.exec_context()?;
    let ctx = DmlCtx {
        catalog: &inner.catalog,
        graph_views: &inner.graph_views,
        source_map: &inner.source_map,
        faults: inner.faults.clone(),
        gov: if gov.active() { Some(&gov) } else { None },
    };
    let csr = inner.config.csr;
    match &mut inner.txn {
        Some(journal) => {
            // Explicit transaction: statement-level atomicity via savepoint.
            // Nothing publishes until COMMIT — readers keep the previous
            // epoch.
            let sp = journal.savepoint();
            match f(&ctx, journal).and_then(|n| {
                maybe_reseal(&ctx, csr, &gov)?;
                Ok(n)
            }) {
                Ok(n) => Ok(ResultSet::affected(n)),
                Err(e) => {
                    journal.rollback_to(&ctx, sp)?;
                    Err(e)
                }
            }
        }
        None => {
            // Implicit (auto-commit) transaction.
            let mut journal = Journal::new();
            let mut resealed: Vec<String> = Vec::new();
            match f(&ctx, &mut journal).and_then(|n| {
                resealed = maybe_reseal(&ctx, csr, &gov)?;
                Ok(n)
            }) {
                Ok(n) => {
                    if hub.enabled() {
                        // Publish exactly the statement's dirty set: tables
                        // and views it journaled plus any view it re-sealed.
                        let (dirty_tables, mut dirty_views) = journal.dirty_since(0);
                        dirty_views.extend(resealed);
                        publish_epoch(hub, inner, Some((&dirty_tables, &dirty_views)))?;
                    }
                    Ok(ResultSet::affected(n))
                }
                Err(e) => {
                    // The statement rolled back: publish nothing — every
                    // published epoch is some *committed* prefix.
                    journal.rollback_to(&ctx, 0)?;
                    Err(e)
                }
            }
        }
    }
}

/// Re-seal every sealed graph view whose delta overlay outgrew the
/// configured fraction of its vertex set.
///
/// Runs inside the calling statement's atomicity scope, *after* the
/// statement's own maintenance succeeded: an injected fault at `dml.seal`
/// or a memory-cap refusal from the governor aborts the whole statement,
/// whose logical changes then roll back through the journal (undo works on
/// a sealed topology via the delta overlay). The seal itself is
/// build-then-swap, so a failure before the swap leaves the topology on
/// its previous layout — never half-compacted.
fn maybe_reseal(
    ctx: &DmlCtx<'_>,
    csr: crate::config::CsrConfig,
    gov: &ExecContext,
) -> Result<Vec<String>> {
    let mut resealed = Vec::new();
    if !csr.sealed {
        return Ok(resealed);
    }
    // Sorted order: with several views due at once, the fault-site hit
    // sequence (and thus a sweep's nth-hit selection) must be stable.
    let mut names: Vec<&String> = ctx.graph_views.keys().collect();
    names.sort();
    for name in names {
        let view = &ctx.graph_views[name];
        let estimate = {
            let topo = view.topology.read();
            if !(topo.is_sealed() && topo.overlay_fraction() >= csr.reseal_fraction) {
                continue;
            }
            topo.sealed_bytes_estimate()
        };
        ctx.fault("dml.seal")?;
        // Charge the compacted arrays before building them, so a cap
        // violation surfaces while the topology is still untouched.
        if gov.active() {
            gov.charge_bytes(estimate as u64)?;
        }
        view.topology.write().seal();
        resealed.push(name.clone());
    }
    Ok(resealed)
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

/// Publish a new epoch from the writer's committed state.
///
/// `dirty` is `None` for a full publication (DDL, COMMIT, ROLLBACK,
/// enablement) or `Some((tables, views))` listing exactly what the last
/// auto-committed statement touched — everything else reuses the previous
/// epoch's `Arc`s, so a point update re-snapshots one table, not the whole
/// database. Must never run while `inner.txn` is open: the live tables
/// would contain uncommitted changes.
fn publish_epoch(hub: &EpochHub, inner: &mut DbInner, dirty: DirtySet) -> Result<()> {
    if !hub.enabled() {
        return Ok(());
    }
    debug_assert!(inner.txn.is_none(), "publishing mid-transaction");
    let plan_ctx = cached_planner_ctx(inner)?;
    let prev = hub.current_arc();
    let is_clean = |set: Option<&std::collections::HashSet<String>>, name: &str| {
        matches!(set, Some(s) if !s.contains(name))
    };
    let mut bytes = 0usize;
    let mut tables = HashMap::new();
    for name in inner.catalog.table_names() {
        let reused = if is_clean(dirty.map(|(t, _)| t), &name) {
            prev.as_ref().and_then(|p| p.tables.get(&name).cloned())
        } else {
            None
        };
        let t = match reused {
            Some(t) => t,
            None => Arc::new(inner.catalog.table(&name)?.read().snapshot()),
        };
        // Coarse size estimate: slots dominate; good enough for the
        // retained-bytes gauge (not an allocator-accurate count).
        bytes += t.slot_count() * 48;
        tables.insert(name, t);
    }
    let mut views = HashMap::new();
    for (name, view) in &inner.graph_views {
        let reused = if is_clean(dirty.map(|(_, v)| v), name) {
            prev.as_ref().and_then(|p| p.views.get(name).map(|v| v.topo.clone()))
        } else {
            None
        };
        let topo = match reused {
            Some(t) => t,
            None => Arc::new(view.topology.read().snapshot()),
        };
        bytes += topo.memory_bytes();
        views.insert(
            name.clone(),
            EpochView {
                def: view.def.clone(),
                topo,
            },
        );
    }
    hub.install(tables, views, plan_ctx, bytes);
    Ok(())
}

/// Get the cached planner context, building it on first use after DDL.
fn cached_planner_ctx(inner: &mut DbInner) -> Result<Arc<PlannerCtx>> {
    if let Some(ctx) = &inner.plan_ctx {
        return Ok(ctx.clone());
    }
    let ctx = Arc::new(planner_ctx(inner)?);
    inner.plan_ctx = Some(ctx.clone());
    Ok(ctx)
}

fn planner_ctx(inner: &DbInner) -> Result<PlannerCtx> {
    let mut tables = HashMap::new();
    let mut hash_indexed = HashMap::new();
    for name in inner.catalog.table_names() {
        let handle = inner.catalog.table(&name)?;
        let t = handle.read();
        tables.insert(name.clone(), t.schema().clone());
        let cols: Vec<usize> = t
            .indexes()
            .filter(|ix| ix.kind() == IndexKind::Hash)
            .map(|ix| ix.column())
            .collect();
        if !cols.is_empty() {
            hash_indexed.insert(name.clone(), cols);
        }
    }
    let mut graphs = HashMap::new();
    let mut vertex_scan_schemas = HashMap::new();
    let mut edge_scan_schemas = HashMap::new();
    for (name, view) in &inner.graph_views {
        let vh = inner.catalog.table(&view.def.vertex_source)?;
        let eh = inner.catalog.table(&view.def.edge_source)?;
        let vt = vh.read();
        let et = eh.read();
        graphs.insert(
            name.clone(),
            GraphMeta {
                def: view.def.clone(),
                vertex_schema: vt.schema().clone(),
                edge_schema: et.schema().clone(),
            },
        );
        vertex_scan_schemas.insert(name.clone(), Arc::new(view.def.vertex_scan_schema(&vt)));
        edge_scan_schemas.insert(name.clone(), Arc::new(view.def.edge_scan_schema(&et)));
    }
    Ok(PlannerCtx {
        tables,
        hash_indexed,
        graphs: Arc::new(graphs),
        vertex_scan_schemas,
        edge_scan_schemas,
    })
}

fn run_select(
    inner: &DbInner,
    select: &grfusion_sql::Select,
    ctx: &PlannerCtx,
) -> Result<ResultSet> {
    let select = fold_subqueries(inner, select, ctx)?;
    let plan = plan_select(&select, ctx, &inner.config.optimizer)?;
    let costed = cost_plan(inner, ctx, plan)?;
    run_plan(inner, &costed.plan, Vec::new(), false, costed.prefer_row)
}

/// Fold uncorrelated `IN (SELECT ...)` subqueries into literal lists by
/// executing them bottom-up (the engine is serial, so each fold sees a
/// consistent snapshot). Returns a clone only when folding is needed.
fn fold_subqueries<'s>(
    inner: &DbInner,
    select: &'s grfusion_sql::Select,
    ctx: &PlannerCtx,
) -> Result<std::borrow::Cow<'s, grfusion_sql::Select>> {
    fold_subqueries_with(&mut |s| run_select(inner, s, ctx), select)
}

/// Runner-generic body of [`fold_subqueries`]: the locked path executes
/// subqueries against `DbInner`, the epoch path against a pinned
/// [`crate::epoch::Epoch`] — both share the folding logic through `run`.
pub(crate) fn fold_subqueries_with<'s>(
    run: &mut dyn FnMut(&grfusion_sql::Select) -> Result<ResultSet>,
    select: &'s grfusion_sql::Select,
) -> Result<std::borrow::Cow<'s, grfusion_sql::Select>> {
    use std::borrow::Cow;
    fn select_has_subquery(s: &grfusion_sql::Select) -> bool {
        let exprs = s
            .projections
            .iter()
            .filter_map(|p| match p {
                grfusion_sql::SelectItem::Expr { expr, .. } => Some(expr),
                _ => None,
            })
            .chain(s.selection.iter())
            .chain(s.group_by.iter())
            .chain(s.having.iter())
            .chain(s.order_by.iter().map(|(e, _)| e));
        exprs.into_iter().any(expr_has_subquery)
    }
    fn expr_has_subquery(e: &grfusion_sql::Expr) -> bool {
        use grfusion_sql::Expr as E;
        match e {
            E::InSubquery { .. } => true,
            E::Literal(_) | E::Parameter(_) | E::CompoundRef(_) => false,
            E::Unary { expr, .. } => expr_has_subquery(expr),
            E::Binary { left, right, .. } => expr_has_subquery(left) || expr_has_subquery(right),
            E::InList { expr, list, .. } => {
                expr_has_subquery(expr) || list.iter().any(expr_has_subquery)
            }
            E::Between {
                expr, low, high, ..
            } => expr_has_subquery(expr) || expr_has_subquery(low) || expr_has_subquery(high),
            E::Function { args, .. } => args.iter().any(expr_has_subquery),
        }
    }
    if !select_has_subquery(select) {
        return Ok(Cow::Borrowed(select));
    }
    let mut owned = select.clone();
    for p in &mut owned.projections {
        if let grfusion_sql::SelectItem::Expr { expr, .. } = p {
            fold_expr_subqueries_with(run, expr)?;
        }
    }
    if let Some(sel) = &mut owned.selection {
        fold_expr_subqueries_with(run, sel)?;
    }
    for g in &mut owned.group_by {
        fold_expr_subqueries_with(run, g)?;
    }
    if let Some(h) = &mut owned.having {
        fold_expr_subqueries_with(run, h)?;
    }
    for (e, _) in &mut owned.order_by {
        fold_expr_subqueries_with(run, e)?;
    }
    Ok(Cow::Owned(owned))
}

fn fold_expr_subqueries(
    inner: &DbInner,
    e: &mut grfusion_sql::Expr,
    ctx: &PlannerCtx,
) -> Result<()> {
    fold_expr_subqueries_with(&mut |s| run_select(inner, s, ctx), e)
}

pub(crate) fn fold_expr_subqueries_with(
    run: &mut dyn FnMut(&grfusion_sql::Select) -> Result<ResultSet>,
    e: &mut grfusion_sql::Expr,
) -> Result<()> {
    use grfusion_sql::Expr as E;
    match e {
        E::InSubquery {
            expr,
            select,
            negated,
        } => {
            fold_expr_subqueries_with(run, expr)?;
            let rs = run(select)?;
            if rs.schema.len() != 1 {
                return Err(Error::analysis(format!(
                    "IN (SELECT ...) must return exactly one column, got {}",
                    rs.schema.len()
                )));
            }
            let list = rs
                .rows
                .into_iter()
                .map(|mut r| E::Literal(r.remove(0)))
                .collect();
            *e = E::InList {
                expr: expr.clone(),
                list,
                negated: *negated,
            };
        }
        E::Literal(_) | E::Parameter(_) | E::CompoundRef(_) => {}
        E::Unary { expr, .. } => fold_expr_subqueries_with(run, expr)?,
        E::Binary { left, right, .. } => {
            fold_expr_subqueries_with(run, left)?;
            fold_expr_subqueries_with(run, right)?;
        }
        E::InList { expr, list, .. } => {
            fold_expr_subqueries_with(run, expr)?;
            for i in list {
                fold_expr_subqueries_with(run, i)?;
            }
        }
        E::Between {
            expr, low, high, ..
        } => {
            fold_expr_subqueries_with(run, expr)?;
            fold_expr_subqueries_with(run, low)?;
            fold_expr_subqueries_with(run, high)?;
        }
        E::Function { args, .. } => {
            for a in args {
                fold_expr_subqueries_with(run, a)?;
            }
        }
    }
    Ok(())
}

fn run_plan(
    inner: &DbInner,
    plan: &crate::plan::PlanNode,
    params: Vec<grfusion_common::Value>,
    collect_metrics: bool,
    force_row: bool,
) -> Result<ResultSet> {
    // Acquire read guards for every table and topology once; operators then
    // work against plain references (serial execution — no per-row locks).
    let table_names = inner.catalog.table_names();
    let handles: Vec<(String, grfusion_storage::TableRef)> = table_names
        .iter()
        .map(|n| Ok((n.clone(), inner.catalog.table(n)?)))
        .collect::<Result<_>>()?;
    let table_guards: Vec<(String, parking_lot::RwLockReadGuard<'_, Table>)> = handles
        .iter()
        .map(|(n, h)| (n.clone(), h.read()))
        .collect();
    let topo_guards: Vec<(
        String,
        parking_lot::RwLockReadGuard<'_, grfusion_graph::GraphTopology>,
    )> = inner
        .graph_views
        .iter()
        .map(|(n, v)| (n.clone(), v.topology.read()))
        .collect();

    let mut tables: HashMap<String, &Table> = HashMap::new();
    for (n, g) in &table_guards {
        tables.insert(n.clone(), &**g);
    }
    let mut graphs: HashMap<String, GraphEnv<'_>> = HashMap::new();
    for (n, g) in &topo_guards {
        let view = &inner.graph_views[n];
        let vertex_table = *tables
            .get(&view.def.vertex_source)
            .ok_or_else(|| Error::execution("missing vertex source table"))?;
        let edge_table = *tables
            .get(&view.def.edge_source)
            .ok_or_else(|| Error::execution("missing edge source table"))?;
        graphs.insert(
            n.clone(),
            GraphEnv {
                def: &view.def,
                topo: g,
                vertex_table,
                edge_table,
            },
        );
    }
    let env = QueryEnv {
        tables,
        graphs,
        limits: inner.config.limits,
        parallel: inner.config.parallel,
        params,
        gov: inner.exec_context()?,
        // Cost-model pipeline choice: small estimated results skip batch
        // assembly entirely (row and batch pipelines are byte-identical, so
        // this is a pure latency decision).
        batch: if force_row {
            crate::config::BatchConfig::disabled()
        } else {
            inner.config.batch
        },
    };
    let (rows, metrics) = if collect_metrics {
        let (rows, m) = execute_plan_with_metrics(plan, &env)?;
        (rows, Some(m))
    } else {
        (execute_plan(plan, &env)?, None)
    };
    Ok(ResultSet {
        schema: plan.schema().clone(),
        rows,
        rows_affected: 0,
        metrics,
    })
}
