//! # GRFusion-RS — native graph support inside an in-memory relational engine
//!
//! A from-scratch Rust reproduction of *Extending In-Memory Relational
//! Database Engines with Native Graph Support* (Hassan, Kuznetsova, Jeong,
//! Aref, Sadoghi — EDBT 2018). The paper's GRFusion system makes graphs
//! first-class citizens inside VoltDB; this crate is the analogous engine:
//!
//! * **Graph views as database objects** (§3): `CREATE GRAPH VIEW`
//!   materializes a native adjacency-list topology whose vertexes/edges
//!   hold tuple pointers into relational storage ([`graph_view`]).
//! * **Online graph updates** (§3.3): DML on a graph view's relational
//!   sources transactionally maintains the topology ([`dml`]).
//! * **The PATHS construct** (§4): `gv.PATHS`, `gv.VERTEXES`, `gv.EDGES`
//!   in the FROM clause, indexed path references, path aggregates.
//! * **Cross-model query pipelines** (§5): `VertexScan`, `EdgeScan`, and
//!   lazy `PathScan` operators co-exist with relational operators in one
//!   volcano pipeline ([`exec`]); vertexes/edges/paths are extended tuples.
//! * **Query optimization** (§6): path-length inference, predicate pushdown
//!   ahead of path scans, and logical→physical traversal-operator mapping
//!   (DFS/BFS/shortest-path with the `F < L` memory heuristic)
//!   ([`planner`]).
//!
//! ## Quick start
//!
//! ```
//! use grfusion::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE Users (uId INTEGER PRIMARY KEY, lName VARCHAR)").unwrap();
//! db.execute("CREATE TABLE Rel (relId INTEGER PRIMARY KEY, u1 INTEGER, u2 INTEGER)").unwrap();
//! db.execute("INSERT INTO Users VALUES (1, 'Smith'), (2, 'Jones'), (3, 'Parker')").unwrap();
//! db.execute("INSERT INTO Rel VALUES (10, 1, 2), (11, 2, 3)").unwrap();
//! db.execute(
//!     "CREATE UNDIRECTED GRAPH VIEW Social \
//!      VERTEXES(ID = uId, lstName = lName) FROM Users \
//!      EDGES(ID = relId, FROM = u1, TO = u2) FROM Rel",
//! ).unwrap();
//! let rs = db.execute(
//!     "SELECT PS.EndVertex.lstName FROM Social.Paths PS \
//!      WHERE PS.StartVertex.Id = 1 AND PS.Length = 2",
//! ).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! assert_eq!(rs.rows[0][0].to_string(), "Parker");
//! ```

pub mod analyze;
pub mod batch;
pub mod config;
pub mod cost;
pub mod db;
pub mod dml;
pub mod env;
pub mod epoch;
pub use epoch::EpochSnapshot;
pub mod exec;
pub mod expr;
pub mod governor;
pub mod graph_view;
pub mod lockorder;
pub mod metrics;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod result;

pub use config::{
    BatchConfig, CsrConfig, EngineConfig, EpochConfig, ExecLimits, GovernorConfig, OptimizerFlags,
    ParallelConfig, TraversalChoice,
};
pub use db::{Database, PreparedQuery};
pub use governor::{
    enter_request, CancelToken, FaultKind, FaultPlan, FaultRule, FaultState, RequestGuard,
    RequestOptions, DML_FAULT_SITES,
};
pub use metrics::{GovCounters, GraphCounters, OpMetrics, QueryMetrics, WorkerMetrics};
pub use result::ResultSet;

pub use grfusion_common::{Error, ResourceKind, Result, Value};
