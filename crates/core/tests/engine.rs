//! End-to-end engine tests: every query shape from the paper (EDBT 2018
//! Listings 1–6) plus DDL, DML, transactions, graph maintenance, optimizer
//! behaviours, and error paths.

use grfusion::{Database, EngineConfig, Error, Value};

/// The paper's Figure 3 social network, slightly extended:
///
/// users: 1 Smith (Lawyer), 2 Jones (Doctor), 3 Parker (Lawyer), 4 Patrick
/// relationships (undirected): 10: 1-2 (2001), 11: 2-3 (1999), 12: 3-4 (2005),
///                             13: 1-4 (2010)
fn social_db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE Users (uId INTEGER PRIMARY KEY, lName VARCHAR, dob VARCHAR, job VARCHAR)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE Relationships (relId INTEGER PRIMARY KEY, uId1 INTEGER, uId2 INTEGER, \
         startYear INTEGER, isRelative BOOLEAN)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Users VALUES \
         (1, 'Smith', '1989-01-01', 'Lawyer'), \
         (2, 'Jones', '1991-05-12', 'Doctor'), \
         (3, 'Parker', '1985-03-03', 'Lawyer'), \
         (4, 'Patrick', '1970-07-07', 'Engineer')",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Relationships VALUES \
         (10, 1, 2, 2001, true), \
         (11, 2, 3, 1999, false), \
         (12, 3, 4, 2005, false), \
         (13, 1, 4, 2010, true)",
    )
    .unwrap();
    db.execute(
        "CREATE UNDIRECTED GRAPH VIEW SocialNetwork \
         VERTEXES(ID = uId, lstName = lName, birthdate = dob, job = job) FROM Users \
         EDGES(ID = relId, FROM = uId1, TO = uId2, startYear = startYear, relative = isRelative) \
         FROM Relationships",
    )
    .unwrap();
    db
}

/// A small directed weighted road network: grid-ish with known shortest
/// paths. 1→2 (1.0), 2→4 (1.0), 1→3 (1.0), 3→4 (5.0), 1→4 (10.0), 4→5 (2.0)
fn road_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE Intersections (iId INTEGER PRIMARY KEY, addr VARCHAR)")
        .unwrap();
    db.execute(
        "CREATE TABLE Roads (rId INTEGER PRIMARY KEY, src INTEGER, dst INTEGER, \
         distance DOUBLE, toll BOOLEAN)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Intersections VALUES (1, 'Address 1'), (2, 'Address 2'), (3, 'Address 3'), \
         (4, 'Address 4'), (5, 'Address 5')",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Roads VALUES \
         (100, 1, 2, 1.0, false), (101, 2, 4, 1.0, false), (102, 1, 3, 1.0, false), \
         (103, 3, 4, 5.0, false), (104, 1, 4, 10.0, true), (105, 4, 5, 2.0, false)",
    )
    .unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW RoadNetwork \
         VERTEXES(ID = iId, address = addr) FROM Intersections \
         EDGES(ID = rId, FROM = src, TO = dst, distance = distance, toll = toll) FROM Roads",
    )
    .unwrap();
    db
}

fn texts(rs: &grfusion::ResultSet) -> Vec<String> {
    let mut v: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------------
// Listings
// ---------------------------------------------------------------------------

#[test]
fn listing2_friends_of_friends() {
    let db = social_db();
    // Lawyers: Smith (1) and Parker (3). Paths of length 2 over edges with
    // startYear > 2000. Qualifying edges: 10 (1-2), 12 (3-4), 13 (1-4).
    // From 1: 1-2 (dead end at len 1... no second qualifying edge from 2),
    //          1-4-3 (edges 13, 12) → EndVertex Parker
    // From 3: 3-4-1 (edges 12, 13) → EndVertex Smith
    let rs = db
        .execute(
            "SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
             WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uId AND PS.Length = 2 \
             AND PS.Edges[0..*].startYear > 2000",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["Parker", "Smith"]);
}

#[test]
fn listing3_reachability_with_edge_type_filter() {
    let db = social_db();
    // Reachability from Smith to Parker over non-relative edges only:
    // 1-2 is relative → blocked; path 1-?: only edge 11 (2-3) and 12 (3-4)
    // are non-relative; from 1 both incident edges (10, 13) are relative →
    // unreachable.
    let rs = db
        .execute(
            "SELECT PS.PathString FROM Users A, Users B, SocialNetwork.Paths PS \
             WHERE A.lName = 'Smith' AND B.lName = 'Parker' \
             AND PS.StartVertex.Id = A.uId AND PS.EndVertex.Id = B.uId \
             AND PS.Edges[0..*].relative = false LIMIT 1",
        )
        .unwrap();
    assert!(rs.rows.is_empty());
    // Without the filter, a path exists.
    let rs = db
        .execute(
            "SELECT PS.PathString FROM Users A, Users B, SocialNetwork.Paths PS \
             WHERE A.lName = 'Smith' AND B.lName = 'Parker' \
             AND PS.StartVertex.Id = A.uId AND PS.EndVertex.Id = B.uId LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn listing4_triangle_counting() {
    let db = social_db();
    // Triangles in the social network: 1-2-3-4-1? No: a triangle needs a
    // 3-cycle; edges 10 (1-2), 11 (2-3), 12 (3-4), 13 (1-4) form a 4-cycle,
    // so triangle count must be 0.
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM SocialNetwork.Paths P WHERE P.Length = 3 \
             AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(0)));
    // Add the chord 1-3: the 4-cycle 1-2-3-4 plus chord yields TWO
    // triangles, {1,2,3} and {1,3,4}.
    db.execute("INSERT INTO Relationships VALUES (14, 3, 1, 2011, false)")
        .unwrap();
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM SocialNetwork.Paths P WHERE P.Length = 3 \
             AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
        )
        .unwrap();
    // Undirected: each triangle is traversed from 3 start vertexes × 2
    // directions = 6 closed 3-paths; 2 triangles → 12.
    assert_eq!(rs.scalar(), Some(&Value::Integer(12)));
    // Constraining the first edge pins the count to paths through edge 10.
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM SocialNetwork.Paths P WHERE P.Length = 3 \
             AND P.Edges[0].Id = 10 \
             AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
        )
        .unwrap();
    // Triangle {1,2,3} traversed with edge 10 first: 1-2-3-1 and 2-1-3-2.
    assert_eq!(rs.scalar(), Some(&Value::Integer(2)));
}

#[test]
fn listing5_vertex_scan_with_relational_ops() {
    let db = social_db();
    let rs = db
        .execute(
            "SELECT VS.birthdate, VS.fanOut FROM SocialNetwork.Vertexes VS \
             WHERE VS.lstName = 'Smith'",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::text("1989-01-01"));
    assert_eq!(rs.rows[0][1], Value::Integer(2)); // edges 10 and 13
}

#[test]
fn listing6_top_k_shortest_paths() {
    let db = road_db();
    let rs = db
        .execute(
            "SELECT TOP 2 PS FROM RoadNetwork.Paths PS HINT(SHORTESTPATH(distance)), \
             RoadNetwork.Vertexes Src, RoadNetwork.Vertexes Dest \
             WHERE PS.StartVertex.Id = Src.Id AND PS.EndVertex.Id = Dest.Id \
             AND Src.address = 'Address 1' AND Dest.address = 'Address 4'",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    let p0 = rs.rows[0][0].as_path().unwrap();
    let p1 = rs.rows[1][0].as_path().unwrap();
    assert_eq!(p0.path_string(), "1->2->4");
    assert!((p0.cost - 2.0).abs() < 1e-9);
    assert_eq!(p1.path_string(), "1->3->4");
    assert!((p1.cost - 6.0).abs() < 1e-9);
}

#[test]
fn shortest_path_with_edge_predicate_avoids_toll() {
    let db = road_db();
    // Exclude toll roads; shortest 1→4 without edge 104 is still 1->2->4.
    let rs = db
        .execute(
            "SELECT PS.PathString, PS.Cost FROM RoadNetwork.Paths PS HINT(SHORTESTPATH(distance)) \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 4 \
             AND PS.Edges[0..*].toll = false LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("1->2->4"));
}

// ---------------------------------------------------------------------------
// Path property / aggregate surface
// ---------------------------------------------------------------------------

#[test]
fn unexposed_attribute_is_an_analysis_error() {
    let db = road_db();
    // `dst` is a source column but not an exposed edge attribute.
    let err = db
        .execute(
            "SELECT PS.Length FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 AND PS.Edges[0].dst = 2",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Analysis(_)), "{err}");
}

#[test]
fn indexed_id_projections() {
    let db = road_db();
    let rs = db
        .execute(
            "SELECT PS.Edges[0], PS.Vertexes[0], PS.Edges[1], PS.Vertexes[2] \
             FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 AND PS.Vertexes[1].Id = 2",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(100)); // edge 1->2
    assert_eq!(rs.rows[0][1], Value::Integer(1));
    assert_eq!(rs.rows[0][2], Value::Integer(101)); // edge 2->4
    assert_eq!(rs.rows[0][3], Value::Integer(4));
}

#[test]
fn path_property_projection_values() {
    let db = road_db();
    let rs = db
        .execute(
            "SELECT PS.Length, PS.StartVertex.Id, PS.EndVertex.Id, PS.PathString, \
             PS.Edges[0].distance, PS.Vertexes[1].address \
             FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 AND PS.EndVertex.Id = 4 \
             AND PS.Vertexes[1].Id = 2",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Integer(2));
    assert_eq!(row[1], Value::Integer(1));
    assert_eq!(row[2], Value::Integer(4));
    assert_eq!(row[3], Value::text("1->2->4"));
    assert_eq!(row[4], Value::Double(1.0));
    assert_eq!(row[5], Value::text("Address 2"));
}

#[test]
fn path_aggregates_sum_min_max_avg_count() {
    let db = road_db();
    let rs = db
        .execute(
            "SELECT SUM(PS.Edges.distance), MIN(PS.Edges.distance), MAX(PS.Edges.distance), \
             AVG(PS.Edges.distance), COUNT(PS.Edges.distance) \
             FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 4 AND PS.Length = 2 \
             AND PS.Vertexes[1].Id = 3",
        )
        .unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Double(6.0));
    assert_eq!(row[1], Value::Double(1.0));
    assert_eq!(row[2], Value::Double(5.0));
    assert_eq!(row[3], Value::Double(3.0));
    assert_eq!(row[4], Value::Integer(2));
}

#[test]
fn path_aggregate_predicate_prunes() {
    let db = road_db();
    // All 1→4 paths of length ≤ 2 with total distance < 3: only 1->2->4.
    let rs = db
        .execute(
            "SELECT PS.PathString FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 4 \
             AND PS.Length <= 2 AND SUM(PS.Edges.distance) < 3",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["1->2->4"]);
}

#[test]
fn fanin_fanout_path_vertex_attrs() {
    let db = road_db();
    let rs = db
        .execute(
            "SELECT PS.Vertexes[1].fanOut, PS.Vertexes[1].fanIn FROM RoadNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 AND PS.Vertexes[1].Id = 4",
        )
        .unwrap();
    // vertex 4: out-edges {105}, in-edges {101, 103, 104}
    assert_eq!(rs.rows[0][0], Value::Integer(1));
    assert_eq!(rs.rows[0][1], Value::Integer(3));
}

// ---------------------------------------------------------------------------
// Graph updates (§3.3)
// ---------------------------------------------------------------------------

#[test]
fn topology_updates_on_dml() {
    let db = social_db();
    let before = db.graph_stats("SocialNetwork").unwrap();
    assert_eq!((before.vertex_count, before.edge_count), (4, 4));

    db.execute("INSERT INTO Users VALUES (5, 'New', '2000-01-01', 'Chef')")
        .unwrap();
    db.execute("INSERT INTO Relationships VALUES (14, 4, 5, 2020, false)")
        .unwrap();
    let s = db.graph_stats("SocialNetwork").unwrap();
    assert_eq!((s.vertex_count, s.edge_count), (5, 5));

    // New vertex is reachable.
    let rs = db
        .execute(
            "SELECT PS.PathString FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5 LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);

    // Deleting an edge updates the topology.
    db.execute("DELETE FROM Relationships WHERE relId = 14")
        .unwrap();
    let s = db.graph_stats("SocialNetwork").unwrap();
    assert_eq!(s.edge_count, 4);
    let rs = db
        .execute(
            "SELECT PS.PathString FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5 LIMIT 1",
        )
        .unwrap();
    assert!(rs.rows.is_empty());

    // Now the isolated vertex can go too.
    db.execute("DELETE FROM Users WHERE uId = 5").unwrap();
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().vertex_count, 4);
}

#[test]
fn vertex_delete_with_incident_edges_is_rejected_and_rolled_back() {
    let db = social_db();
    let err = db.execute("DELETE FROM Users WHERE uId = 1").unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // Storage unchanged (statement rolled back).
    assert_eq!(db.table_len("Users").unwrap(), 4);
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().vertex_count, 4);
}

#[test]
fn edge_insert_with_dangling_endpoint_rolls_back_row() {
    let db = social_db();
    let err = db
        .execute("INSERT INTO Relationships VALUES (20, 1, 99, 2020, false)")
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    assert_eq!(db.table_len("Relationships").unwrap(), 4);
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().edge_count, 4);
}

#[test]
fn attribute_update_leaves_topology_untouched_but_visible() {
    let db = social_db();
    db.execute("UPDATE Users SET lName = 'Smythe' WHERE uId = 1")
        .unwrap();
    // Traversal sees the new attribute through the tuple pointer.
    let rs = db
        .execute(
            "SELECT PS.StartVertex.lstName FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 1 LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Smythe"));
}

#[test]
fn vertex_id_update_renames_and_cascades() {
    let db = social_db();
    db.execute("UPDATE Users SET uId = 100 WHERE uId = 1").unwrap();
    // Edge source rows cascaded.
    let rs = db
        .execute("SELECT relId FROM Relationships WHERE uId1 = 100 OR uId2 = 100")
        .unwrap();
    assert_eq!(rs.rows.len(), 2); // edges 10 and 13
    // Topology renamed: traversal from 100 works.
    let rs = db
        .execute(
            "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 100 AND PS.Length = 1",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["2", "4"]);
}

#[test]
fn edge_endpoint_update_relinks() {
    let db = social_db();
    // Move edge 10 from (1,2) to (1,3).
    db.execute("UPDATE Relationships SET uId2 = 3 WHERE relId = 10")
        .unwrap();
    let rs = db
        .execute(
            "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 2 AND PS.Length = 1",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["3"]); // only edge 11 remains at vertex 2
}

#[test]
fn multi_row_endpoint_update_rolls_back_relinked_edges() {
    // A multi-row UPDATE that relinks several edges must be all-or-nothing:
    // if a later row's new endpoint does not exist, the earlier rows' already
    // relinked topology edges AND their storage rows must be restored.
    let db = Database::new();
    db.execute("CREATE TABLE V (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE E (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
        .unwrap();
    db.execute("INSERT INTO V VALUES (1), (2), (3), (4)").unwrap();
    // Edge 10: 1→2, edge 11: 3→4.
    db.execute("INSERT INTO E VALUES (10, 1, 2), (11, 3, 4)").unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW G VERTEXES(ID = id) FROM V \
         EDGES(ID = id, FROM = a, TO = b) FROM E",
    )
    .unwrap();

    // b+2 relinks edge 10 to 1→4 (valid), then edge 11 to 3→6 — vertex 6
    // does not exist, so the whole statement must abort.
    let err = db.execute("UPDATE E SET b = b + 2").unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");

    // Storage rows restored.
    let rs = db.execute("SELECT b FROM E WHERE id = 10").unwrap();
    assert_eq!(rs.rows[0][0], Value::Integer(2));
    let rs = db.execute("SELECT b FROM E WHERE id = 11").unwrap();
    assert_eq!(rs.rows[0][0], Value::Integer(4));

    // Topology restored: 1 still reaches only 2 in one hop (not 4).
    let rs = db
        .execute(
            "SELECT PS.EndVertex.Id FROM G.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 1",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["2"]);
    let rs = db
        .execute(
            "SELECT PS.EndVertex.Id FROM G.Paths PS \
             WHERE PS.StartVertex.Id = 3 AND PS.Length = 1",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["4"]);
    assert_eq!(db.graph_stats("G").unwrap().edge_count, 2);
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

#[test]
fn explicit_transaction_commit_and_rollback() {
    let db = social_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Users VALUES (5, 'Tx', 'x', 'y')")
        .unwrap();
    db.execute("INSERT INTO Relationships VALUES (20, 5, 1, 2024, false)")
        .unwrap();
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().vertex_count, 5);
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.table_len("Users").unwrap(), 4);
    assert_eq!(db.table_len("Relationships").unwrap(), 4);
    let s = db.graph_stats("SocialNetwork").unwrap();
    assert_eq!((s.vertex_count, s.edge_count), (4, 4));

    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Users VALUES (5, 'Tx', 'x', 'y')")
        .unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(db.table_len("Users").unwrap(), 5);
}

#[test]
fn failed_statement_in_transaction_keeps_earlier_work() {
    let db = social_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Users VALUES (5, 'Keep', 'x', 'y')")
        .unwrap();
    // Fails (duplicate pk) — only this statement rolls back.
    assert!(db
        .execute("INSERT INTO Users VALUES (5, 'Dup', 'x', 'y')")
        .is_err());
    db.execute("COMMIT").unwrap();
    assert_eq!(db.table_len("Users").unwrap(), 5);
}

#[test]
fn transaction_control_errors() {
    let db = social_db();
    assert!(db.execute("COMMIT").is_err());
    assert!(db.execute("ROLLBACK").is_err());
    db.execute("BEGIN").unwrap();
    assert!(db.execute("BEGIN").is_err());
    db.execute("COMMIT").unwrap();
}

// ---------------------------------------------------------------------------
// Relational engine behaviours
// ---------------------------------------------------------------------------

#[test]
fn joins_aggregates_order_limit() {
    let db = social_db();
    let rs = db
        .execute(
            "SELECT U.job, COUNT(*) FROM Users U GROUP BY U.job \
             HAVING COUNT(*) >= 1 ORDER BY U.job",
        )
        .unwrap();
    let rows: Vec<(String, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_integer().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("Doctor".into(), 1),
            ("Engineer".into(), 1),
            ("Lawyer".into(), 2)
        ]
    );

    // Join users to relationships.
    let rs = db
        .execute(
            "SELECT U.lName, R.relId FROM Users U, Relationships R \
             WHERE U.uId = R.uId1 ORDER BY R.relId",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[0][0], Value::text("Smith"));

    let rs = db
        .execute("SELECT uId FROM Users ORDER BY uId DESC LIMIT 2")
        .unwrap();
    assert_eq!(
        rs.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![Value::Integer(4), Value::Integer(3)]
    );
}

#[test]
fn select_star_and_aliases() {
    let db = social_db();
    let rs = db.execute("SELECT * FROM Users WHERE uId = 1").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.schema.len(), 4);
    let rs = db
        .execute("SELECT lName AS surname FROM Users WHERE uId = 2")
        .unwrap();
    assert_eq!(rs.schema.column(0).name, "surname");
    assert_eq!(rs.rows[0][0], Value::text("Jones"));
}

#[test]
fn arithmetic_between_in_not() {
    let db = social_db();
    let rs = db
        .execute("SELECT uId * 10 + 1 FROM Users WHERE uId BETWEEN 2 AND 3 ORDER BY uId")
        .unwrap();
    assert_eq!(
        rs.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![Value::Integer(21), Value::Integer(31)]
    );
    let rs = db
        .execute("SELECT uId FROM Users WHERE job IN ('Lawyer', 'Doctor') AND NOT uId = 1 ORDER BY uId")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    let rs = db
        .execute("SELECT uId FROM Users WHERE job NOT IN ('Lawyer') ORDER BY uId")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn edge_scan_source() {
    let db = social_db();
    let rs = db
        .execute(
            "SELECT ES.id, ES.from, ES.to FROM SocialNetwork.Edges ES \
             WHERE ES.relative = true ORDER BY ES.id",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], Value::Integer(10));
    assert_eq!(rs.rows[1][0], Value::Integer(13));
}

#[test]
fn path_self_join() {
    let db = road_db();
    // Join two path sets: P2 starts where P1 ends.
    let rs = db
        .execute(
            "SELECT P1.PathString, P2.PathString \
             FROM RoadNetwork.Paths P1, RoadNetwork.Paths P2 \
             WHERE P1.StartVertex.Id = 1 AND P1.Length = 1 AND P1.EndVertex.Id = 2 \
             AND P2.StartVertex.Id = P1.EndVertex.Id AND P2.Length = 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::text("1->2"));
    assert_eq!(rs.rows[0][1], Value::text("2->4"));
}

// ---------------------------------------------------------------------------
// Optimizer behaviours
// ---------------------------------------------------------------------------

#[test]
fn ablation_flags_do_not_change_results() {
    use grfusion::{OptimizerFlags, TraversalChoice};
    let query = "SELECT PS.PathString FROM SocialNetwork.Paths PS \
                 WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 \
                 AND PS.Edges[0..*].startYear > 2000";
    let reference = {
        let db = social_db();
        texts(&db.execute(query).unwrap())
    };
    let variants = [
        OptimizerFlags {
            predicate_pushdown: false,
            ..Default::default()
        },
        OptimizerFlags {
            length_inference: false,
            ..Default::default()
        },
        OptimizerFlags {
            lazy_path_scan: false,
            ..Default::default()
        },
        OptimizerFlags {
            aggregate_pushdown: false,
            ..Default::default()
        },
        OptimizerFlags {
            traversal: TraversalChoice::Dfs,
            ..Default::default()
        },
        OptimizerFlags {
            traversal: TraversalChoice::Bfs,
            ..Default::default()
        },
    ];
    for flags in variants {
        let db = social_db();
        db.set_config(EngineConfig {
            optimizer: flags,
            ..Default::default()
        });
        assert_eq!(texts(&db.execute(query).unwrap()), reference, "{flags:?}");
    }
}

#[test]
fn explain_shows_cross_model_pipeline() {
    let db = social_db();
    let plan = db
        .explain(
            "SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
             WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uId AND PS.Length = 2",
        )
        .unwrap();
    assert!(plan.contains("PathJoin"), "{plan}");
    assert!(plan.contains("TableScan(users, filtered)"), "{plan}");
    assert!(plan.contains("len 2..=2"), "{plan}");
}

#[test]
fn index_lookup_used_for_pk_equality() {
    let db = social_db();
    let plan = db
        .explain("SELECT lName FROM Users WHERE uId = 2")
        .unwrap();
    assert!(plan.contains("IndexLookup(users)"), "{plan}");
    let rs = db.execute("SELECT lName FROM Users WHERE uId = 2").unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Jones"));
}

#[test]
fn index_join_used_for_correlated_pk_equality() {
    let db = social_db();
    let plan = db
        .explain(
            "SELECT U.lName, R.relId FROM Relationships R, Users U \
             WHERE U.uId = R.uId1 AND R.startYear > 2000",
        )
        .unwrap();
    assert!(plan.contains("IndexJoin(users)"), "{plan}");
    let rs = db
        .execute(
            "SELECT U.lName, R.relId FROM Relationships R, Users U \
             WHERE U.uId = R.uId1 AND R.startYear > 2000 ORDER BY R.relId",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3); // edges 10, 12, 13
    assert_eq!(rs.rows[0][0], Value::text("Smith"));
    assert_eq!(rs.rows[1][0], Value::text("Parker"));
}

#[test]
fn sqlgraph_style_hop_joins_agree_with_pathscan() {
    // The Native Relational-Core shape: two self-joins over an adjacency
    // table must find the same 2-hop neighbours as the PATHS construct.
    let db = social_db();
    // adjacency table (undirected → both directions), with a pk for probes
    db.execute(
        "CREATE TABLE Adj (aid INTEGER PRIMARY KEY, src INTEGER, dst INTEGER)",
    )
    .unwrap();
    db.execute("CREATE INDEX adj_src ON Adj (src)").unwrap();
    let rs = db
        .execute("SELECT relId, uId1, uId2 FROM Relationships ORDER BY relId")
        .unwrap();
    for (i, row) in rs.rows.iter().enumerate() {
        let (e, a, b) = (
            row[0].as_integer().unwrap(),
            row[1].as_integer().unwrap(),
            row[2].as_integer().unwrap(),
        );
        db.execute(&format!(
            "INSERT INTO Adj VALUES ({}, {a}, {b}), ({}, {b}, {a})",
            2 * i,
            2 * i + 1
        ))
        .unwrap();
        let _ = e;
    }
    let rel = db
        .execute(
            "SELECT e1.dst FROM Adj e0, Adj e1 \
             WHERE e0.src = 1 AND e1.src = e0.dst AND e1.dst <> 1 ORDER BY e1.dst",
        )
        .unwrap();
    let rel: Vec<i64> = rel.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    let gr = db
        .execute(
            "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 ORDER BY PS.EndVertex.Id",
        )
        .unwrap();
    let gr: Vec<i64> = gr.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(rel, gr);
}

#[test]
fn resource_budget_aborts_join_blowup() {
    use grfusion::ExecLimits;
    let db = social_db();
    db.set_config(EngineConfig {
        limits: ExecLimits {
            max_intermediate_rows: Some(10),
        },
        ..Default::default()
    });
    // 4×4×4 cross join exceeds 10 intermediate rows.
    let err = db
        .execute("SELECT A.uId FROM Users A, Users B, Users C")
        .unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted { .. }), "{err}");
}

#[test]
fn default_max_path_len_caps_unbounded_queries() {
    use grfusion::OptimizerFlags;
    let db = social_db();
    db.set_config(EngineConfig {
        optimizer: OptimizerFlags {
            default_max_path_len: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    // No explicit length bound → capped at 1 hop.
    let rs = db
        .execute(
            "SELECT PS.PathString FROM SocialNetwork.Paths PS WHERE PS.StartVertex.Id = 1",
        )
        .unwrap();
    assert!(rs.rows.iter().all(|r| {
        !r[0].to_string().contains("->") || r[0].to_string().matches("->").count() == 1
    }));
}

// ---------------------------------------------------------------------------
// Error surface
// ---------------------------------------------------------------------------

#[test]
fn analysis_errors() {
    let db = social_db();
    assert!(db.execute("SELECT nope FROM Users").is_err());
    assert!(db.execute("SELECT * FROM Missing").is_err());
    assert!(db.execute("SELECT * FROM Missing.Paths P").is_err());
    assert!(db
        .execute("SELECT PS.Nope FROM SocialNetwork.Paths PS WHERE PS.Length = 1")
        .is_err());
    assert!(db
        .execute(
            "SELECT PS.PathString FROM SocialNetwork.Paths PS \
             HINT(SHORTESTPATH(distance)) WHERE PS.StartVertex.Id = 1"
        )
        .is_err()); // unknown cost attr + missing end anchor
    // ambiguous column across two bindings with same schema
    assert!(db
        .execute("SELECT uId FROM Users A, Users B")
        .is_err());
}

#[test]
fn ddl_errors() {
    let db = social_db();
    assert!(db
        .execute("CREATE TABLE Users (x INTEGER)")
        .is_err()); // duplicate
    assert!(db.execute("DROP TABLE Users").is_err()); // graph view depends on it
    db.execute("DROP GRAPH VIEW SocialNetwork").unwrap();
    db.execute("DROP TABLE Relationships").unwrap();
    assert!(db.execute("DROP GRAPH VIEW SocialNetwork").is_err());
}

#[test]
fn duplicate_graph_view_rejected() {
    let db = social_db();
    let err = db
        .execute(
            "CREATE GRAPH VIEW SocialNetwork VERTEXES(ID = uId) FROM Users \
             EDGES(ID = relId, FROM = uId1, TO = uId2) FROM Relationships",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Catalog(_)));
}

#[test]
fn unanchored_path_scan_uses_all_vertexes() {
    let db = road_db();
    let rs = db
        .execute("SELECT COUNT(P) FROM RoadNetwork.Paths P WHERE P.Length = 1")
        .unwrap();
    // One path per directed edge.
    assert_eq!(rs.scalar(), Some(&Value::Integer(6)));
}

#[test]
fn join_on_syntax_desugars_to_comma_join() {
    let db = social_db();
    let a = db
        .execute(
            "SELECT U.lName, R.relId FROM Relationships R JOIN Users U ON U.uId = R.uId1 \
             WHERE R.startYear > 2000 ORDER BY R.relId",
        )
        .unwrap();
    let b = db
        .execute(
            "SELECT U.lName, R.relId FROM Relationships R, Users U \
             WHERE U.uId = R.uId1 AND R.startYear > 2000 ORDER BY R.relId",
        )
        .unwrap();
    assert_eq!(a.rows, b.rows);
    assert!(!a.rows.is_empty());
    // INNER JOIN spelling and chained joins.
    let c = db
        .execute(
            "SELECT A.lName, B.lName FROM Relationships R \
             INNER JOIN Users A ON A.uId = R.uId1 \
             INNER JOIN Users B ON B.uId = R.uId2 \
             ORDER BY R.relId",
        )
        .unwrap();
    assert_eq!(c.rows.len(), 4);
    assert_eq!(c.rows[0][0], Value::text("Smith"));
    assert_eq!(c.rows[0][1], Value::text("Jones"));
}

#[test]
fn join_on_with_graph_source() {
    let db = social_db();
    // JOIN syntax combines with a path source in the same FROM clause.
    let rs = db
        .execute(
            "SELECT PS.EndVertex.lstName FROM Users U JOIN SocialNetwork.Paths PS \
             ON PS.StartVertex.Id = U.uId \
             WHERE U.job = 'Lawyer' AND PS.Length = 2 ORDER BY PS.EndVertex.lstName",
        )
        .unwrap();
    let comma = db
        .execute(
            "SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = U.uId AND U.job = 'Lawyer' AND PS.Length = 2 \
             ORDER BY PS.EndVertex.lstName",
        )
        .unwrap();
    assert_eq!(rs.rows, comma.rows);
}

#[test]
fn in_subquery_folds_and_filters() {
    let db = social_db();
    // Users who appear as an endpoint of a pre-2001 relationship: edge 11
    // (2-3, 1999).
    let rs = db
        .execute(
            "SELECT lName FROM Users WHERE uId IN \
             (SELECT uId1 FROM Relationships WHERE startYear < 2001) ORDER BY uId",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["Jones"]);
    // NOT IN form.
    let rs = db
        .execute(
            "SELECT lName FROM Users WHERE uId NOT IN \
             (SELECT uId1 FROM Relationships WHERE startYear < 2001) ORDER BY uId",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    // Subquery feeding a graph traversal: paths starting from lawyers.
    let rs = db
        .execute(
            "SELECT DISTINCT PS.StartVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id IN (SELECT uId FROM Users WHERE job = 'Lawyer') \
             AND PS.Length = 1 ORDER BY PS.StartVertex.Id",
        )
        .unwrap();
    assert_eq!(texts(&rs), vec!["1", "3"]);
    // Multi-column subqueries are rejected.
    assert!(db
        .execute("SELECT lName FROM Users WHERE uId IN (SELECT uId1, uId2 FROM Relationships)")
        .is_err());
}

#[test]
fn dml_with_in_subquery() {
    let db = social_db();
    // Delete relationships touching lawyers only on the uId1 side.
    let rs = db
        .execute(
            "DELETE FROM Relationships WHERE uId1 IN \
             (SELECT uId FROM Users WHERE job = 'Lawyer')",
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 3); // edges 10 (1-2), 12 (3-4), 13 (1-4)
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().edge_count, 1);
    // UPDATE with a subquery predicate.
    let rs = db
        .execute(
            "UPDATE Users SET job = 'Retired' WHERE uId IN \
             (SELECT uId2 FROM Relationships)",
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 1); // remaining edge 11 points at user 3
    let rs = db
        .execute("SELECT lName FROM Users WHERE job = 'Retired'")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Parker"));
}

#[test]
fn select_distinct() {
    let db = social_db();
    // Two lawyers → one distinct job row.
    let rs = db.execute("SELECT DISTINCT job FROM Users ORDER BY job").unwrap();
    assert_eq!(rs.rows.len(), 3);
    let rs = db
        .execute("SELECT DISTINCT job FROM Users WHERE job = 'Lawyer'")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    // Distinct over graph output: 2-hop neighbours of vertex 1 reachable
    // along multiple paths collapse.
    db.execute("INSERT INTO Relationships VALUES (14, 3, 1, 2011, false)")
        .unwrap();
    let all = db
        .execute(
            "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 2 AND PS.Length = 2",
        )
        .unwrap();
    let distinct = db
        .execute(
            "SELECT DISTINCT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = 2 AND PS.Length = 2",
        )
        .unwrap();
    assert!(distinct.rows.len() < all.rows.len());
}

#[test]
fn insert_into_select() {
    let db = social_db();
    db.execute("CREATE TABLE Lawyers (uId INTEGER PRIMARY KEY, lName VARCHAR)")
        .unwrap();
    let rs = db
        .execute("INSERT INTO Lawyers SELECT uId, lName FROM Users WHERE job = 'Lawyer'")
        .unwrap();
    assert_eq!(rs.rows_affected, 2);
    let rs = db.execute("SELECT lName FROM Lawyers ORDER BY uId").unwrap();
    assert_eq!(texts(&rs), vec!["Parker", "Smith"]);
    // With a column list; unlisted columns become NULL.
    db.execute("CREATE TABLE Names (n VARCHAR, extra INTEGER)").unwrap();
    db.execute("INSERT INTO Names (n) SELECT lName FROM Users WHERE uId = 1")
        .unwrap();
    let rs = db.execute("SELECT n, extra FROM Names").unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Smith"));
    assert!(rs.rows[0][1].is_null());
    // Graph maintenance applies: INSERT..SELECT into a graph source.
    db.execute("CREATE TABLE Staging (relId INTEGER, u1 INTEGER, u2 INTEGER)")
        .unwrap();
    db.execute("INSERT INTO Staging VALUES (50, 2, 4)").unwrap();
    db.execute(
        "INSERT INTO Relationships SELECT relId, u1, u2, 2024 + 0, false FROM Staging",
    )
    .unwrap();
    assert_eq!(db.graph_stats("SocialNetwork").unwrap().edge_count, 5);
}

#[test]
fn insert_into_select_rolls_back_on_constraint_violation() {
    let db = social_db();
    db.execute("CREATE TABLE Copy (uId INTEGER PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO Copy VALUES (1)").unwrap();
    // Selecting all users collides with the existing pk=1 → whole
    // statement rolls back.
    let err = db
        .execute("INSERT INTO Copy SELECT uId FROM Users")
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    assert_eq!(db.table_len("Copy").unwrap(), 1);
}

#[test]
fn prepared_statements_bind_parameters() {
    let db = social_db();
    let q = db
        .prepare("SELECT lName FROM Users WHERE uId = ?")
        .unwrap();
    let rs = db.execute_prepared(&q, &[Value::Integer(2)]).unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Jones"));
    let rs = db.execute_prepared(&q, &[Value::Integer(3)]).unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Parker"));
    // The prepared plan still uses the pk index.
    assert!(q.explain().contains("IndexLookup(users)"), "{}", q.explain());
    // Missing parameters are an execution error.
    assert!(db.execute_prepared(&q, &[]).is_err());
}

#[test]
fn prepared_path_queries_with_parameters() {
    let db = social_db();
    let q = db
        .prepare(
            "SELECT PS.Length FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? \
             AND PS.Length <= 4 AND PS.Edges[0..*].startYear > ? LIMIT 1",
        )
        .unwrap();
    // 1 → 3 via edges with startYear > 2000: 1-4 (2010), 4-3 (2005).
    let rs = db
        .execute_prepared(
            &q,
            &[Value::Integer(1), Value::Integer(3), Value::Integer(2000)],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    // With a threshold above every edge, nothing qualifies.
    let rs = db
        .execute_prepared(
            &q,
            &[Value::Integer(1), Value::Integer(3), Value::Integer(2999)],
        )
        .unwrap();
    assert!(rs.rows.is_empty());
    // The reachability fast path applies to the parameterized plan too.
    assert!(q.explain().contains("reachability"), "{}", q.explain());
}

#[test]
fn prepared_plan_answers_match_adhoc_sql() {
    let db = social_db();
    let q = db
        .prepare(
            "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
             WHERE PS.StartVertex.Id = ? AND PS.Length = 2 ORDER BY PS.EndVertex.Id",
        )
        .unwrap();
    for s in 1..=4 {
        let prepared = db.execute_prepared(&q, &[Value::Integer(s)]).unwrap();
        let adhoc = db
            .execute(&format!(
                "SELECT PS.EndVertex.Id FROM SocialNetwork.Paths PS \
                 WHERE PS.StartVertex.Id = {s} AND PS.Length = 2 ORDER BY PS.EndVertex.Id"
            ))
            .unwrap();
        assert_eq!(prepared.rows, adhoc.rows, "start {s}");
    }
}

#[test]
fn index_probe_coerces_numeric_types() {
    let db = social_db();
    // Double-valued key against the integer pk still hits via coercion.
    let rs = db.execute("SELECT lName FROM Users WHERE uId = 2.0").unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = db.execute("SELECT lName FROM Users WHERE uId = 2.5").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn script_execution() {
    let db = Database::new();
    let rs = db
        .execute_script(
            "CREATE TABLE t (a INTEGER); \
             INSERT INTO t VALUES (1), (2), (3); \
             SELECT COUNT(*) FROM t;",
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3)));
}
