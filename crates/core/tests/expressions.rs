//! Expression-semantics tests through the SQL surface: three-valued
//! logic, quantified range predicates, path aggregates, and aggregate
//! corner cases.

use grfusion::{Database, Value};

fn db_with_nulls() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 10, 'x'), (2, NULL, 'y'), (3, 30, NULL)")
        .unwrap();
    db
}

#[test]
fn null_comparisons_reject_rows() {
    let db = db_with_nulls();
    // a > 5 is UNKNOWN for the NULL row → excluded.
    let rs = db.execute("SELECT id FROM t WHERE a > 5 ORDER BY id").unwrap();
    assert_eq!(rs.rows.len(), 2);
    // NOT (a > 5) is also UNKNOWN for NULL → still excluded (3VL, not
    // two-valued negation).
    let rs = db.execute("SELECT id FROM t WHERE NOT a > 5").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn three_valued_and_or() {
    let db = db_with_nulls();
    // UNKNOWN OR TRUE = TRUE: the NULL-a row qualifies via the second arm.
    let rs = db
        .execute("SELECT id FROM t WHERE a > 100 OR b = 'y' ORDER BY id")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(2));
    // UNKNOWN AND FALSE = FALSE; UNKNOWN AND TRUE = UNKNOWN → rejected.
    let rs = db.execute("SELECT id FROM t WHERE a > 5 AND b = 'y'").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn in_list_with_null_semantics() {
    let db = db_with_nulls();
    // NULL IN (...) is UNKNOWN → row 2 excluded.
    let rs = db
        .execute("SELECT id FROM t WHERE a IN (10, 30) ORDER BY id")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // NOT IN with NULL in the probe value is UNKNOWN too.
    let rs = db
        .execute("SELECT id FROM t WHERE a NOT IN (10) ORDER BY id")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(3));
}

#[test]
fn between_and_arithmetic() {
    let db = db_with_nulls();
    let rs = db
        .execute("SELECT id FROM t WHERE a BETWEEN 5 AND 20")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = db
        .execute("SELECT id FROM t WHERE a NOT BETWEEN 5 AND 20")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(3));
    // integer division and modulo
    let rs = db.execute("SELECT 7 / 2, 7 % 2, 7.0 / 2 FROM t LIMIT 1").unwrap();
    assert_eq!(rs.rows[0][0], Value::Integer(3));
    assert_eq!(rs.rows[0][1], Value::Integer(1));
    assert_eq!(rs.rows[0][2], Value::Double(3.5));
    // division by zero is a runtime error
    assert!(db.execute("SELECT 1 / 0 FROM t").is_err());
}

#[test]
fn group_aggregates_skip_nulls() {
    let db = db_with_nulls();
    let rs = db
        .execute("SELECT COUNT(*), COUNT(a), SUM(a), AVG(a), MIN(a), MAX(a) FROM t")
        .unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Integer(3)); // COUNT(*)
    assert_eq!(row[1], Value::Integer(2)); // COUNT(a) ignores NULL
    assert_eq!(row[2], Value::Integer(40));
    assert_eq!(row[3], Value::Double(20.0));
    assert_eq!(row[4], Value::Integer(10));
    assert_eq!(row[5], Value::Integer(30));
}

#[test]
fn aggregates_over_empty_input() {
    let db = db_with_nulls();
    let rs = db
        .execute("SELECT COUNT(*), SUM(a), MIN(a) FROM t WHERE id > 100")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(0));
    assert!(rs.rows[0][1].is_null());
    assert!(rs.rows[0][2].is_null());
    // ... but a grouped aggregate over empty input yields no rows.
    let rs = db
        .execute("SELECT b, COUNT(*) FROM t WHERE id > 100 GROUP BY b")
        .unwrap();
    assert!(rs.rows.is_empty());
}

// ---------------------------------------------------------------------------
// Quantified range predicates on a small chain graph
// ---------------------------------------------------------------------------

/// 1 -e10(w=1)-> 2 -e11(w=5)-> 3 -e12(w=2)-> 4 (directed chain)
fn chain_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w INTEGER)")
        .unwrap();
    db.execute("INSERT INTO v VALUES (1), (2), (3), (4)").unwrap();
    db.execute("INSERT INTO e VALUES (10, 1, 2, 1), (11, 2, 3, 5), (12, 3, 4, 2)")
        .unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db
}

#[test]
fn quantifier_all_positions() {
    let db = chain_db();
    // [0..*]: every edge w >= 1 — all paths qualify.
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 1 \
             AND P.Length >= 1 AND P.Edges[0..*].w >= 1",
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(3))); // lengths 1, 2, 3
    // [0..*] w < 5 rejects any path containing edge 11.
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 1 \
             AND P.Length >= 1 AND P.Edges[0..*].w < 5",
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Integer(1))); // only 1->2
}

#[test]
fn quantifier_bounded_and_single() {
    let db = chain_db();
    // [1..1] requires position 1 to exist and w = 5 there.
    let rs = db
        .execute(
            "SELECT P.Length FROM g.Paths P WHERE P.StartVertex.Id = 1 \
             AND P.Edges[1..1].w = 5 ORDER BY P.Length",
        )
        .unwrap();
    let lens: Vec<i64> = rs.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(lens, vec![2, 3]);
    // Single-index form as a scalar predicate behaves the same.
    let rs = db
        .execute(
            "SELECT P.Length FROM g.Paths P WHERE P.StartVertex.Id = 1 \
             AND P.Edges[1].w = 5 ORDER BY P.Length",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn quantifier_star_from_one_is_existential() {
    let db = chain_db();
    // [1..*] requires at least 2 edges (paper §6.1: Edges[5..*] ⇒ len ≥ 6).
    let rs = db
        .execute(
            "SELECT P.Length FROM g.Paths P WHERE P.StartVertex.Id = 1 \
             AND P.Edges[1..*].w >= 1 ORDER BY P.Length",
        )
        .unwrap();
    let lens: Vec<i64> = rs.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(lens, vec![2, 3]);
}

#[test]
fn path_aggregate_bounds_and_pushdown() {
    let db = chain_db();
    // SUM of weights along 1->2->3->4 is 8; the bound prunes mid-traversal.
    let rs = db
        .execute(
            "SELECT P.Length, SUM(P.Edges.w) FROM g.Paths P \
             WHERE P.StartVertex.Id = 1 AND P.Length >= 1 AND SUM(P.Edges.w) < 7 \
             ORDER BY P.Length",
        )
        .unwrap();
    let sums: Vec<i64> = rs.rows.iter().map(|r| r[1].as_integer().unwrap()).collect();
    assert_eq!(sums, vec![1, 6]); // 1 and 1+5; 1+5+2=8 pruned
}

#[test]
fn path_min_max_avg_aggregates() {
    let db = chain_db();
    let rs = db
        .execute(
            "SELECT MIN(P.Edges.w), MAX(P.Edges.w), AVG(P.Edges.w), COUNT(P.Edges.w) \
             FROM g.Paths P WHERE P.StartVertex.Id = 1 AND P.Length = 3",
        )
        .unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Integer(1));
    assert_eq!(row[1], Value::Integer(5));
    assert!((row[2].as_double().unwrap() - 8.0 / 3.0).abs() < 1e-12);
    assert_eq!(row[3], Value::Integer(3));
}

#[test]
fn zero_length_paths_and_vacuous_star() {
    let db = chain_db();
    // Reachability of a vertex from itself holds even under a [0..*]
    // filter (vacuously true on the zero-length path).
    let rs = db
        .execute(
            "SELECT P.Length FROM g.Paths P WHERE P.StartVertex.Id = 2 \
             AND P.EndVertex.Id = 2 AND P.Length <= 3 AND P.Edges[0..*].w > 100 LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Integer(0));
}
