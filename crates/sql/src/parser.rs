//! Recursive-descent SQL parser.

use grfusion_common::{Error, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&TokenKind::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` parameters seen so far (positional numbering).
    params: u32,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            params: 0,
        })
    }

    // ---- token helpers ----------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn here(&self) -> String {
        self.span_here().to_string()
    }

    /// Span of the token the parser is looking at.
    fn span_here(&self) -> Span {
        let t = &self.tokens[self.pos];
        Span {
            line: t.line,
            col: t.col,
        }
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {what} at {} but found {:?}",
                self.here(),
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "unexpected trailing input at {}: {:?}",
                self.here(),
                self.peek()
            )))
        }
    }

    /// Case-insensitive keyword check.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn at_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.peek_at(offset), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected `{kw}` at {} but found {:?}",
                self.here(),
                self.peek()
            )))
        }
    }

    /// Consume an identifier (any keyword is acceptable as an identifier in
    /// identifier position — keyword recognition is contextual).
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(Error::parse(format!(
                "expected {what} at {} but found {other:?}",
                self.here()
            ))),
        }
    }

    fn integer(&mut self, what: &str) -> Result<i64> {
        match self.peek().clone() {
            TokenKind::Integer(i) => {
                self.advance();
                Ok(i)
            }
            other => Err(Error::parse(format!(
                "expected {what} at {} but found {other:?}",
                self.here()
            ))),
        }
    }

    // ---- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            let select = self.select()?;
            return Ok(Statement::Explain {
                analyze,
                select: Box::new(select),
            });
        }
        if self.at_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                let name = self.ident("table name")?;
                return Ok(Statement::DropTable { name });
            }
            self.expect_kw("GRAPH")?;
            self.expect_kw("VIEW")?;
            let name = self.ident("graph view name")?;
            return Ok(Statement::DropGraphView { name });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        Err(Error::parse(format!(
            "unrecognized statement at {}: {:?}",
            self.here(),
            self.peek()
        )))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        // CREATE [UNIQUE] [ORDERED] INDEX
        let mut unique = false;
        let mut ordered = false;
        loop {
            if self.at_kw("UNIQUE") && !unique {
                self.advance();
                unique = true;
            } else if self.at_kw("ORDERED") && !ordered {
                self.advance();
                ordered = true;
            } else {
                break;
            }
        }
        if self.eat_kw("INDEX") {
            let name = self.ident("index name")?;
            self.expect_kw("ON")?;
            let table = self.ident("table name")?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let column = self.ident("column name")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                column,
                unique,
                ordered,
            }));
        }
        if unique || ordered {
            return Err(Error::parse(format!(
                "expected INDEX after CREATE UNIQUE/ORDERED at {}",
                self.here()
            )));
        }
        // CREATE [UNDIRECTED|DIRECTED] GRAPH VIEW
        // Plain CREATE GRAPH VIEW defaults to directed.
        let directed = !self.eat_kw("UNDIRECTED") && {
            self.eat_kw("DIRECTED");
            true
        };
        self.expect_kw("GRAPH")?;
        self.expect_kw("VIEW")?;
        self.create_graph_view(directed)
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident("column name")?;
            let data_type = self.type_name()?;
            let mut primary_key = false;
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                primary_key = true;
            }
            columns.push(ColumnDef {
                name: col_name,
                data_type,
                primary_key,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Statement::CreateTable(CreateTable { name, columns }))
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let t = self.ident("type name")?;
        let ty = match t.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" => TypeName::Integer,
            "DOUBLE" | "FLOAT" | "REAL" => TypeName::Double,
            "BOOLEAN" | "BOOL" => TypeName::Boolean,
            "VARCHAR" | "STRING" | "TEXT" => TypeName::Varchar,
            other => {
                return Err(Error::parse(format!("unknown type name `{other}`")));
            }
        };
        // Optional length like VARCHAR(32) — accepted and ignored.
        if self.eat(&TokenKind::LParen) {
            self.integer("type length")?;
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        Ok(ty)
    }

    /// `VERTEXES(ID = col, attr = col, ...) FROM src EDGES(ID = col,
    /// FROM = col, TO = col, attr = col, ...) FROM src`
    fn create_graph_view(&mut self, directed: bool) -> Result<Statement> {
        let name = self.ident("graph view name")?;
        self.expect_kw("VERTEXES")?;
        let (vertex_pairs, vertex_source) = self.mapping_clause()?;
        self.expect_kw("EDGES")?;
        let (edge_pairs, edge_source) = self.mapping_clause()?;

        let mut vertex_id = None;
        let mut vertex_attrs = Vec::new();
        for (k, v) in vertex_pairs {
            if k.eq_ignore_ascii_case("ID") {
                if vertex_id.replace(v).is_some() {
                    return Err(Error::parse("duplicate ID mapping in VERTEXES clause"));
                }
            } else {
                vertex_attrs.push((k, v));
            }
        }
        let vertex_id =
            vertex_id.ok_or_else(|| Error::parse("VERTEXES clause requires an ID mapping"))?;

        let (mut edge_id, mut edge_from, mut edge_to) = (None, None, None);
        let mut edge_attrs = Vec::new();
        for (k, v) in edge_pairs {
            if k.eq_ignore_ascii_case("ID") {
                if edge_id.replace(v).is_some() {
                    return Err(Error::parse("duplicate ID mapping in EDGES clause"));
                }
            } else if k.eq_ignore_ascii_case("FROM") {
                if edge_from.replace(v).is_some() {
                    return Err(Error::parse("duplicate FROM mapping in EDGES clause"));
                }
            } else if k.eq_ignore_ascii_case("TO") {
                if edge_to.replace(v).is_some() {
                    return Err(Error::parse("duplicate TO mapping in EDGES clause"));
                }
            } else {
                edge_attrs.push((k, v));
            }
        }
        let edge_id = edge_id.ok_or_else(|| Error::parse("EDGES clause requires an ID mapping"))?;
        let edge_from =
            edge_from.ok_or_else(|| Error::parse("EDGES clause requires a FROM mapping"))?;
        let edge_to = edge_to.ok_or_else(|| Error::parse("EDGES clause requires a TO mapping"))?;

        Ok(Statement::CreateGraphView(CreateGraphView {
            name,
            directed,
            vertex_id,
            vertex_attrs,
            vertex_source,
            edge_id,
            edge_from,
            edge_to,
            edge_attrs,
            edge_source,
        }))
    }

    /// `(a = b, c = d, ...) FROM source`
    fn mapping_clause(&mut self) -> Result<(Vec<(String, String)>, String)> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut pairs = Vec::new();
        loop {
            let key = self.ident("attribute name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let value = self.ident("source column")?;
            pairs.push((key, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect_kw("FROM")?;
        let source = self.ident("relational source")?;
        Ok((pairs, source))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        let columns = if self.eat(&TokenKind::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident("column name")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Some(cols)
        } else {
            None
        };
        if self.at_kw("SELECT") {
            let select = self.select()?;
            return Ok(Statement::Insert(Insert {
                table,
                columns,
                source: InsertSource::Select(Box::new(select)),
            }));
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source: InsertSource::Values(rows),
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident("table name")?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            assignments.push((col, self.expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            selection,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, selection }))
    }

    // ---- SELECT ---------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        // `SELECT TOP n` (paper Listing 6)
        let mut limit = None;
        if self.at_kw("TOP") && matches!(self.peek_at(1), TokenKind::Integer(_)) {
            self.advance();
            limit = Some(self.integer("TOP count")? as u64);
        }
        let mut projections = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        let mut join_conditions: Vec<Expr> = Vec::new();
        loop {
            from.push(self.from_item()?);
            // `[INNER] JOIN item ON cond` desugars to a comma join with the
            // condition AND-ed into the WHERE clause (the paper writes its
            // queries in the comma form; both are accepted).
            loop {
                let inner = self.at_kw("INNER") && self.at_kw_at(1, "JOIN");
                if inner {
                    self.advance();
                }
                if !self.eat_kw("JOIN") {
                    break;
                }
                from.push(self.from_item()?);
                self.expect_kw("ON")?;
                join_conditions.push(self.expr()?);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let mut selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        for cond in join_conditions {
            selection = Expr::and_opt(selection, Some(cond));
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            let n = self.integer("LIMIT count")?;
            if n < 0 {
                return Err(Error::parse("LIMIT must be non-negative"));
            }
            limit = Some(n as u64);
        }
        Ok(Select {
            distinct,
            projections,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> Result<FromItem> {
        let first = self.ident("table or graph view name")?;
        let item = if self.eat(&TokenKind::Dot) {
            let second = self.ident("PATHS, VERTEXES, or EDGES")?;
            let alias = self.opt_alias();
            match second.to_ascii_uppercase().as_str() {
                "PATHS" => {
                    let hint = self.opt_hint()?;
                    FromItem::GraphPaths {
                        graph: first,
                        alias,
                        hint,
                    }
                }
                "VERTEXES" | "VERTICES" => FromItem::GraphVertexes {
                    graph: first,
                    alias,
                },
                "EDGES" => FromItem::GraphEdges {
                    graph: first,
                    alias,
                },
                other => {
                    return Err(Error::parse(format!(
                        "expected PATHS, VERTEXES, or EDGES after `{first}.` but found `{other}`"
                    )));
                }
            }
        } else {
            let alias = self.opt_alias();
            FromItem::Table { name: first, alias }
        };
        Ok(item)
    }

    /// Optional `[AS] alias` — an identifier that is not a clause keyword.
    fn opt_alias(&mut self) -> Option<String> {
        if self.eat_kw("AS") {
            return self.ident("alias").ok();
        }
        const STOPPERS: &[&str] = &[
            "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "HINT", "ON", "FROM", "SELECT",
            "UNION", "AND", "OR", "JOIN", "INNER",
        ];
        if let TokenKind::Ident(s) = self.peek() {
            if !STOPPERS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.advance();
                return Some(s);
            }
        }
        None
    }

    /// Optional `HINT(SHORTESTPATH(attr))` / `HINT(DFS)` / `HINT(BFS)`.
    fn opt_hint(&mut self) -> Result<Option<PathHint>> {
        if !self.eat_kw("HINT") {
            return Ok(None);
        }
        self.expect(&TokenKind::LParen, "`(`")?;
        let kind = self.ident("hint name")?;
        let hint = match kind.to_ascii_uppercase().as_str() {
            "SHORTESTPATH" => {
                self.expect(&TokenKind::LParen, "`(`")?;
                let cost_attr = self.ident("cost attribute")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                PathHint::ShortestPath { cost_attr }
            }
            "DFS" => PathHint::Dfs,
            "BFS" => PathHint::Bfs,
            other => {
                return Err(Error::parse(format!("unknown hint `{other}`")));
            }
        };
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Some(hint))
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.at_kw("AND") {
            self.advance();
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IN / NOT IN / BETWEEN
        let negated = self.at_kw("NOT")
            && (self.at_kw_at(1, "IN") || self.at_kw_at(1, "BETWEEN"));
        if negated {
            self.advance(); // NOT
        }
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen, "`(`")?;
            if self.at_kw("SELECT") {
                let select = self.select()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(Error::parse(format!(
                "expected IN or BETWEEN after NOT at {}",
                self.here()
            )));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negative literals immediately.
            if let Expr::Literal(Value::Integer(i)) = inner {
                return Ok(Expr::Literal(Value::Integer(-i)));
            }
            if let Expr::Literal(Value::Double(d)) = inner {
                return Ok(Expr::Literal(Value::Double(-d)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Integer(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Integer(i)))
            }
            TokenKind::Double(d) => {
                self.advance();
                Ok(Expr::Literal(Value::Double(d)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::text(s)))
            }
            TokenKind::Question => {
                self.advance();
                let i = self.params;
                self.params += 1;
                Ok(Expr::Parameter(i))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Boolean(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Boolean(false)));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                // Function call?
                if matches!(self.peek_at(1), TokenKind::LParen) {
                    self.advance(); // name
                    self.advance(); // (
                    if self.eat(&TokenKind::Star) {
                        self.expect(&TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Function {
                            name,
                            args: Vec::new(),
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, "`)`")?;
                    }
                    return Ok(Expr::Function {
                        name,
                        args,
                        star: false,
                    });
                }
                self.compound_ref()
            }
            other => Err(Error::parse(format!(
                "unexpected token {other:?} at {} in expression",
                self.here()
            ))),
        }
    }

    /// `ident [ '[' range ']' ] ( '.' ident [ '[' range ']' ] )*`
    fn compound_ref(&mut self) -> Result<Expr> {
        let mut parts = Vec::new();
        loop {
            let span = self.span_here();
            let name = self.ident("identifier")?;
            let index = if self.eat(&TokenKind::LBracket) {
                let start = self.integer("index")? as u64;
                let end = if self.eat(&TokenKind::DotDot) {
                    if self.eat(&TokenKind::Star) {
                        IndexEnd::Star
                    } else {
                        IndexEnd::Bounded(self.integer("range end")? as u64)
                    }
                } else {
                    IndexEnd::At
                };
                self.expect(&TokenKind::RBracket, "`]`")?;
                Some(IndexRange { start, end })
            } else {
                None
            };
            parts.push(RefPart { name, index, span });
            if !self.eat(&TokenKind::Dot) {
                break;
            }
        }
        Ok(Expr::CompoundRef(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t WHERE a = 1 LIMIT 5");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.selection.is_some());
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn select_star() {
        let s = sel("SELECT * FROM t");
        assert_eq!(s.projections, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn explain_and_explain_analyze() {
        let Statement::Explain { analyze, select } =
            parse_statement("EXPLAIN SELECT a FROM t").unwrap()
        else {
            panic!("expected explain");
        };
        assert!(!analyze);
        assert_eq!(select.projections.len(), 1);
        let Statement::Explain { analyze, select } =
            parse_statement("EXPLAIN ANALYZE SELECT * FROM gv.PATHS WHERE PATHS.Length = 2")
                .unwrap()
        else {
            panic!("expected explain analyze");
        };
        assert!(analyze);
        assert!(select.selection.is_some());
        // EXPLAIN is contextual, not reserved: still valid as an identifier.
        let s = sel("SELECT explain FROM t");
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn paper_listing_1_create_graph_view() {
        let sql = "CREATE UNDIRECTED GRAPH VIEW SocialNetwork \
                   VERTEXES(ID = uid, lstname = lname, birthdate = dob) FROM Users \
                   EDGES (ID = relid, FROM = uid, TO = uid2, sdate = startdate, relative = isrelative) FROM Relationships";
        let Statement::CreateGraphView(gv) = parse_statement(sql).unwrap() else {
            panic!("wrong statement kind");
        };
        assert_eq!(gv.name, "SocialNetwork");
        assert!(!gv.directed);
        assert_eq!(gv.vertex_id, "uid");
        assert_eq!(
            gv.vertex_attrs,
            vec![
                ("lstname".to_string(), "lname".to_string()),
                ("birthdate".to_string(), "dob".to_string())
            ]
        );
        assert_eq!(gv.vertex_source, "Users");
        assert_eq!(gv.edge_id, "relid");
        assert_eq!(gv.edge_from, "uid");
        assert_eq!(gv.edge_to, "uid2");
        assert_eq!(gv.edge_attrs.len(), 2);
        assert_eq!(gv.edge_source, "Relationships");
    }

    #[test]
    fn graph_view_requires_id_from_to() {
        let sql = "CREATE GRAPH VIEW g VERTEXES(ID = a) FROM v EDGES(ID = b, FROM = c) FROM e";
        assert!(parse_statement(sql).is_err());
        let sql = "CREATE GRAPH VIEW g VERTEXES(x = a) FROM v EDGES(ID = b, FROM = c, TO = d) FROM e";
        assert!(parse_statement(sql).is_err());
    }

    #[test]
    fn paper_listing_2_friends_of_friends() {
        let s = sel("SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
                     WHERE U.Job = 'Lawyer' AND PS.StartVertex.Id = U.uId AND PS.Length = 2 \
                     AND PS.Edges[0..*].StartDate > '1/1/2000'");
        assert_eq!(s.from.len(), 2);
        assert_eq!(
            s.from[1],
            FromItem::GraphPaths {
                graph: "SocialNetwork".into(),
                alias: Some("PS".into()),
                hint: None
            }
        );
        // projection is a compound ref PS.EndVertex.lstName
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!();
        };
        let Expr::CompoundRef(parts) = expr else { panic!() };
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].name, "PS");
        assert_eq!(parts[1].name, "EndVertex");
        assert_eq!(parts[2].name, "lstName");
    }

    #[test]
    fn paper_listing_3_reachability() {
        let s = sel("SELECT PS.PathString FROM Proteins Pr, Proteins Pr2, BioNetwork.Paths PS \
                     WHERE Pr.Name = 'Protein X' AND Pr2.Name = 'Protein Y' \
                     AND PS.StartVertex.Id = Pr.Id AND PS.EndVertex.Id = Pr2.Id \
                     AND PS.Edges[0..*].Type IN ('covalent', 'stable') LIMIT 1");
        assert_eq!(s.limit, Some(1));
        assert_eq!(s.from.len(), 3);
        // find the IN predicate
        let conj = s.selection.unwrap().conjuncts();
        assert_eq!(conj.len(), 5);
        let Expr::InList { list, negated, .. } = &conj[4] else {
            panic!("expected IN, got {:?}", conj[4]);
        };
        assert!(!negated);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn paper_listing_4_triangles() {
        let s = sel("SELECT Count(P) FROM MLGraph.Paths P Where P.Length = 3 \
                     AND P.Edges[0].Label = 'A' AND P.Edges[1].Label = 'B' \
                     AND P.Edges[2].Label = 'C' AND P.Edges[2].EndVertex = P.Edges[0].StartVertex");
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!();
        };
        let Expr::Function { name, args, star } = expr else {
            panic!()
        };
        assert!(name.eq_ignore_ascii_case("count"));
        assert!(!star);
        assert_eq!(args.len(), 1);
        // last conjunct compares two indexed refs
        let conj = s.selection.unwrap().conjuncts();
        let Expr::Binary { left, op, right } = conj.last().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Eq);
        let Expr::CompoundRef(l) = left.as_ref() else { panic!() };
        assert_eq!(
            l[1].index,
            Some(IndexRange {
                start: 2,
                end: IndexEnd::At
            })
        );
        assert_eq!(l[2].name, "EndVertex");
        let Expr::CompoundRef(r) = right.as_ref() else { panic!() };
        assert_eq!(r[2].name, "StartVertex");
    }

    #[test]
    fn paper_listing_5_vertex_scan() {
        let s = sel("SELECT VS.birthdate, VS.fanOut FROM SocialNetwork.Vertexes VS \
                     WHERE VS.lstName = 'Smith'");
        assert_eq!(
            s.from[0],
            FromItem::GraphVertexes {
                graph: "SocialNetwork".into(),
                alias: Some("VS".into())
            }
        );
    }

    #[test]
    fn paper_listing_6_shortest_path_hint() {
        let s = sel("SELECT TOP 2 PS FROM RoadNetwork.Paths PS HINT(SHORTESTPATH (Distance)), \
                     RoadNetwork.Vertexes Src, RoadNetwork.Vertexes Dest \
                     WHERE PS.StartVertex.Id = Src.Id AND PS.EndVertex.Id = Dest.Id \
                     AND Src.Address = \"Address 1\" AND Dest.Address = \"Address 2\"");
        assert_eq!(s.limit, Some(2));
        assert_eq!(
            s.from[0],
            FromItem::GraphPaths {
                graph: "RoadNetwork".into(),
                alias: Some("PS".into()),
                hint: Some(PathHint::ShortestPath {
                    cost_attr: "Distance".into()
                })
            }
        );
        assert_eq!(s.from.len(), 3);
    }

    #[test]
    fn dfs_bfs_hints() {
        let s = sel("SELECT * FROM g.Paths P HINT(DFS) WHERE P.Length = 2");
        let FromItem::GraphPaths { hint, .. } = &s.from[0] else {
            panic!()
        };
        assert_eq!(*hint, Some(PathHint::Dfs));
        let s = sel("SELECT * FROM g.Paths P HINT(BFS)");
        let FromItem::GraphPaths { hint, .. } = &s.from[0] else {
            panic!()
        };
        assert_eq!(*hint, Some(PathHint::Bfs));
    }

    #[test]
    fn path_aggregate_expression() {
        let s = sel("SELECT SUM(PS.Edges.Weight) FROM g.Paths PS WHERE SUM(PS.Edges.Weight) < 10");
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        let Expr::Function { name, args, .. } = expr else { panic!() };
        assert!(name.eq_ignore_ascii_case("sum"));
        let Expr::CompoundRef(parts) = &args[0] else { panic!() };
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn insert_statement() {
        let st = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
        )
        .unwrap();
        let Statement::Insert(ins) = st else { panic!() };
        assert_eq!(ins.columns, Some(vec!["a".into(), "b".into()]));
        let InsertSource::Values(rows) = &ins.source else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Expr::Literal(Value::Null));
    }

    #[test]
    fn negative_literal_folds() {
        let st = parse_statement("INSERT INTO t VALUES (-5, -2.5)").unwrap();
        let Statement::Insert(ins) = st else { panic!() };
        let InsertSource::Values(rows) = &ins.source else { panic!() };
        assert_eq!(rows[0][0], Expr::Literal(Value::Integer(-5)));
        assert_eq!(rows[0][1], Expr::Literal(Value::Double(-2.5)));
    }

    #[test]
    fn update_delete() {
        let st = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3").unwrap();
        let Statement::Update(u) = st else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.selection.is_some());
        let st = parse_statement("DELETE FROM t WHERE id = 3").unwrap();
        let Statement::Delete(d) = st else { panic!() };
        assert!(d.selection.is_some());
    }

    #[test]
    fn create_table_with_types() {
        let st = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(32), w DOUBLE, ok BOOLEAN)",
        )
        .unwrap();
        let Statement::CreateTable(ct) = st else { panic!() };
        assert_eq!(ct.columns.len(), 4);
        assert!(ct.columns[0].primary_key);
        assert_eq!(ct.columns[2].data_type, TypeName::Double);
    }

    #[test]
    fn create_index_variants() {
        let st = parse_statement("CREATE UNIQUE INDEX pk ON t (id)").unwrap();
        let Statement::CreateIndex(ix) = st else { panic!() };
        assert!(ix.unique && !ix.ordered);
        let st = parse_statement("CREATE ORDERED INDEX rng ON t (w)").unwrap();
        let Statement::CreateIndex(ix) = st else { panic!() };
        assert!(!ix.unique && ix.ordered);
    }

    #[test]
    fn operator_precedence() {
        // a OR b AND c  parses as  a OR (b AND c)
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let Expr::Binary { op, .. } = s.selection.unwrap() else {
            panic!()
        };
        assert_eq!(op, BinaryOp::Or);
        // arithmetic precedence: 1 + 2 * 3
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        let Expr::Binary { op, right, .. } = expr else { panic!() };
        assert_eq!(*op, BinaryOp::Add);
        let Expr::Binary { op, .. } = right.as_ref() else { panic!() };
        assert_eq!(*op, BinaryOp::Mul);
    }

    #[test]
    fn not_and_between() {
        let s = sel("SELECT * FROM t WHERE NOT a = 1 AND b BETWEEN 2 AND 5 AND c NOT IN (1, 2)");
        let conj = s.selection.unwrap().conjuncts();
        assert!(matches!(conj[0], Expr::Unary { op: UnaryOp::Not, .. }));
        assert!(matches!(
            conj[1],
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(conj[2], Expr::InList { negated: true, .. }));
    }

    #[test]
    fn group_by_having_order_by() {
        let s = sel("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, b");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1); // DESC
        assert!(s.order_by[1].1); // default ASC
    }

    #[test]
    fn multiple_statements() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn transactions() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn drop_statements() {
        assert_eq!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
        assert_eq!(
            parse_statement("DROP GRAPH VIEW g").unwrap(),
            Statement::DropGraphView { name: "g".into() }
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = parse_statement("SELECT FROM").unwrap_err();
        assert!(e.to_string().contains("parse error"));
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("CREATE GRAPH VIEW").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage ,").is_err());
    }

    #[test]
    fn vertices_spelling_accepted() {
        let s = sel("SELECT * FROM g.Vertices v");
        assert!(matches!(s.from[0], FromItem::GraphVertexes { .. }));
    }

    #[test]
    fn bare_path_projection() {
        // `SELECT TOP 2 PS FROM ...` — PS projects the whole path value.
        let s = sel("SELECT TOP 2 PS FROM g.Paths PS");
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            Expr::CompoundRef(vec![RefPart::plain("PS")])
        );
        assert_eq!(s.limit, Some(2));
    }
}
