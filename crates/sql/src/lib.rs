//! SQL front-end for the GRFusion reproduction.
//!
//! A hand-written lexer and recursive-descent parser for the SQL subset the
//! paper's evaluation needs, **plus** GRFusion's language extensions
//! (EDBT 2018 §3.1, §4):
//!
//! * `CREATE [UNDIRECTED|DIRECTED] GRAPH VIEW gv VERTEXES(ID = col, a = col, ...)
//!   FROM t EDGES(ID = col, FROM = col, TO = col, b = col, ...) FROM t2`
//! * `gv.PATHS`, `gv.VERTEXES`, `gv.EDGES` as FROM-clause sources
//! * path property references: `PS.Length`, `PS.PathString`,
//!   `PS.StartVertex.Id`, `PS.EndVertex.attr`, `PS.Edges[0..*].attr`,
//!   `PS.Edges[2].EndVertex`, `PS.Vertexes[1..3].attr`
//! * path aggregates: `SUM(PS.Edges.Weight)`
//! * traversal hints: `HINT(SHORTESTPATH(Distance))`, `HINT(DFS)`, `HINT(BFS)`
//! * `SELECT TOP k ...` (paper Listing 6) alongside `LIMIT k`
//!
//! Parsing is purely syntactic: qualified references like `PS.Edges[0].Type`
//! are produced as generic [`ast::Expr::CompoundRef`]s; the planner (core
//! crate) resolves them against table aliases vs. graph-view path aliases.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use parser::{parse_statement, parse_statements};
