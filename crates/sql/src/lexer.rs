//! SQL lexer.

use grfusion_common::{Error, Result};

/// A lexical token with its source position (1-based line/column) for error
/// messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Token kinds. Identifiers keep their original text; keyword recognition
/// happens contextually in the parser (so `ID`, `FROM`, `TO` can appear as
/// attribute names inside `CREATE GRAPH VIEW` clauses).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original case preserved).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Double(f64),
    // punctuation / operators
    Comma,
    Dot,
    DotDot,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// Positional parameter placeholder `?` (prepared statements).
    Question,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize `input` into a vector ending with `Eof`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => push!(TokenKind::Comma, 1),
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            '*' => push!(TokenKind::Star, 1),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '/' => push!(TokenKind::Slash, 1),
            '%' => push!(TokenKind::Percent, 1),
            ';' => push!(TokenKind::Semicolon, 1),
            '?' => push!(TokenKind::Question, 1),
            '=' => push!(TokenKind::Eq, 1),
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => push!(TokenKind::NotEq, 2),
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::LtEq, 2)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(TokenKind::NotEq, 2)
                } else {
                    push!(TokenKind::Lt, 1)
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::GtEq, 2)
                } else {
                    push!(TokenKind::Gt, 1)
                }
            }
            '.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    push!(TokenKind::DotDot, 2)
                } else if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    // .5 style float
                    let (tok, len) = lex_number(&input[i..], line, col)?;
                    tokens.push(tok);
                    i += len;
                    col += len as u32;
                } else {
                    push!(TokenKind::Dot, 1)
                }
            }
            '\'' => {
                let (s, len, newlines, endcol) = lex_string(&input[i..], line, col)?;
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    line,
                    col,
                });
                i += len;
                if newlines > 0 {
                    line += newlines;
                    col = endcol;
                } else {
                    col += len as u32;
                }
            }
            '"' => {
                // double-quoted string treated like single-quoted (paper
                // Listing 6 uses "Address 1")
                let (s, len) = lex_dquote(&input[i..], line, col)?;
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    line,
                    col,
                });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&input[i..], line, col)?;
                tokens.push(tok);
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &input[start..i];
                tokens.push(Token {
                    kind: TokenKind::Ident(text.to_string()),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            other => {
                return Err(Error::parse(format!(
                    "unexpected character `{other}` at {line}:{col}"
                )));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

/// Lex a number starting at the front of `s`. Returns the token and length.
fn lex_number(s: &str, line: u32, col: u32) -> Result<(Token, usize)> {
    let bytes = s.as_bytes();
    let mut i = 0usize;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    // Careful: `1..5` must lex as Integer(1) DotDot Integer(5), not 1. .5
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    } else if i < bytes.len() && bytes[i] == b'.' && (i + 1 >= bytes.len() || bytes[i + 1] != b'.')
    {
        // trailing dot like `1.` (not `1..`)
        is_float = true;
        i += 1;
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &s[..i];
    let kind = if is_float {
        TokenKind::Double(
            text.parse::<f64>()
                .map_err(|_| Error::parse(format!("bad number `{text}` at {line}:{col}")))?,
        )
    } else {
        TokenKind::Integer(
            text.parse::<i64>()
                .map_err(|_| Error::parse(format!("bad integer `{text}` at {line}:{col}")))?,
        )
    };
    Ok((Token { kind, line, col }, i))
}

/// Lex a single-quoted string; `''` escapes a quote. Returns (content,
/// consumed length, newline count, column after).
fn lex_string(s: &str, line: u32, col: u32) -> Result<(String, usize, u32, u32)> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'\'');
    let mut out = String::new();
    let mut i = 1usize;
    let mut newlines = 0u32;
    let mut endcol = col + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                out.push('\'');
                i += 2;
                endcol += 2;
            }
            b'\'' => return Ok((out, i + 1, newlines, endcol + 1)),
            b'\n' => {
                out.push('\n');
                i += 1;
                newlines += 1;
                endcol = 1;
            }
            _ => {
                // Preserve UTF-8: copy char boundaries correctly.
                let ch_len = utf8_len(bytes[i]);
                out.push_str(&s[i..i + ch_len]);
                i += ch_len;
                endcol += 1;
            }
        }
    }
    Err(Error::parse(format!(
        "unterminated string literal starting at {line}:{col}"
    )))
}

fn lex_dquote(s: &str, line: u32, col: u32) -> Result<(String, usize)> {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((s[1..i].to_string(), i + 1));
        }
        i += utf8_len(bytes[i]);
    }
    Err(Error::parse(format!(
        "unterminated string literal starting at {line}:{col}"
    )))
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT a, b FROM t WHERE x = 1;"),
            vec![
                Ident("SELECT".into()),
                Ident("a".into()),
                Comma,
                Ident("b".into()),
                Ident("FROM".into()),
                Ident("t".into()),
                Ident("WHERE".into()),
                Ident("x".into()),
                Eq,
                Integer(1),
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn range_syntax_lexes_as_dotdot() {
        use TokenKind::*;
        // The tricky case from the paper: PS.Edges[0..*].StartDate
        assert_eq!(
            kinds("Edges[0..*].X"),
            vec![
                Ident("Edges".into()),
                LBracket,
                Integer(0),
                DotDot,
                Star,
                RBracket,
                Dot,
                Ident("X".into()),
                Eof
            ]
        );
        // 1..5 must not lex a float
        assert_eq!(
            kinds("[1..5]"),
            vec![LBracket, Integer(1), DotDot, Integer(5), RBracket, Eof]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(kinds("42"), vec![Integer(42), Eof]);
        assert_eq!(kinds("4.5"), vec![Double(4.5), Eof]);
        assert_eq!(kinds(".5"), vec![Double(0.5), Eof]);
        assert_eq!(kinds("1e3"), vec![Double(1000.0), Eof]);
        assert_eq!(kinds("2.5e-1"), vec![Double(0.25), Eof]);
    }

    #[test]
    fn strings_and_escapes() {
        use TokenKind::*;
        assert_eq!(kinds("'abc'"), vec![StringLit("abc".into()), Eof]);
        assert_eq!(kinds("'it''s'"), vec![StringLit("it's".into()), Eof]);
        assert_eq!(kinds("\"Address 1\""), vec![StringLit("Address 1".into()), Eof]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("< <= > >= = != <>"),
            vec![Lt, LtEq, Gt, GtEq, Eq, NotEq, NotEq, Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(kinds("a -- comment\n b"), vec![Ident("a".into()), Ident("b".into()), Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_chars() {
        assert!(tokenize("a @ b").is_err());
        assert_eq!(kinds("a ? b")[1], TokenKind::Question);
    }

    #[test]
    fn date_style_literals_pass_through_as_strings() {
        // The paper writes dates as '//2000'-style strings; they are just
        // text to the lexer.
        use TokenKind::*;
        assert_eq!(kinds("'1/1/2000'"), vec![StringLit("1/1/2000".into()), Eof]);
    }
}
