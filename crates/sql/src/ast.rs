//! Abstract syntax tree for the SQL subset + GRFusion extensions.

use grfusion_common::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    CreateGraphView(CreateGraphView),
    DropTable { name: String },
    DropGraphView { name: String },
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    Select(Select),
    /// `EXPLAIN [ANALYZE] SELECT ...` — static plan text, or an annotated
    /// plan with per-operator runtime counters when `analyze` is set.
    Explain { analyze: bool, select: Box<Select> },
    Begin,
    Commit,
    Rollback,
}

/// `CREATE TABLE name (col TYPE [PRIMARY KEY], ...)`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: TypeName,
    pub primary_key: bool,
}

/// Type names as written; mapped to `DataType` during DDL execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Integer,
    Double,
    Boolean,
    Varchar,
}

/// `CREATE [UNIQUE] [ORDERED] INDEX name ON table (column)`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub column: String,
    pub unique: bool,
    pub ordered: bool,
}

/// The paper's graph-view DDL (Listing 1):
///
/// ```sql
/// CREATE UNDIRECTED GRAPH VIEW SocialNetwork
/// VERTEXES(ID = uId, lstName = lName, birthdate = dob) FROM Users
/// EDGES(ID = relId, FROM = uId1, TO = uId2, sdate = startDate) FROM Relationships
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CreateGraphView {
    pub name: String,
    pub directed: bool,
    /// Source column providing the vertex id.
    pub vertex_id: String,
    /// `(exposed attribute name, source column)` pairs.
    pub vertex_attrs: Vec<(String, String)>,
    /// Vertexes relational-source (table or materialized view name).
    pub vertex_source: String,
    pub edge_id: String,
    pub edge_from: String,
    pub edge_to: String,
    pub edge_attrs: Vec<(String, String)>,
    pub edge_source: String,
}

/// `INSERT INTO t [(cols)] VALUES (...), (...)` or
/// `INSERT INTO t [(cols)] SELECT ...` (set-at-a-time insertion — the
/// statement shape Grail-style iterative graph algorithms are made of).
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Option<Vec<String>>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<Select>),
}

/// `UPDATE t SET a = e, ... [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub selection: Option<Expr>,
}

/// `DELETE FROM t [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub selection: Option<Expr>,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT` deduplicates the projected rows.
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `(expression, ascending)` pairs.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n` or `SELECT TOP n`.
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`
    Wildcard,
    /// Expression with optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// One FROM-clause source. Graph sources are recognized syntactically by
/// the `.<PATHS|VERTEXES|EDGES>` suffix (EDBT 2018 §4).
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    Table {
        name: String,
        alias: Option<String>,
    },
    GraphVertexes {
        graph: String,
        alias: Option<String>,
    },
    GraphEdges {
        graph: String,
        alias: Option<String>,
    },
    GraphPaths {
        graph: String,
        alias: Option<String>,
        hint: Option<PathHint>,
    },
}

impl FromItem {
    /// The name this source binds in the query's namespace.
    pub fn binding(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::GraphVertexes { graph, alias }
            | FromItem::GraphEdges { graph, alias }
            | FromItem::GraphPaths { graph, alias, .. } => alias.as_deref().unwrap_or(graph),
        }
    }
}

/// Traversal hint attached to a `gv.PATHS` source (Listing 6 and §6.3).
#[derive(Debug, Clone, PartialEq)]
pub enum PathHint {
    /// `HINT(SHORTESTPATH(attr))` — use `SPScan` over the given edge cost
    /// attribute.
    ShortestPath { cost_attr: String },
    /// `HINT(DFS)` — force depth-first scan.
    Dfs,
    /// `HINT(BFS)` — force breadth-first scan.
    Bfs,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Positional parameter `?` of a prepared statement (0-indexed in
    /// appearance order).
    Parameter(u32),
    /// A possibly-qualified, possibly-indexed reference chain, e.g.
    /// `U.Job`, `PS.Length`, `PS.Edges[0..*].Type`, `P.Edges[2].EndVertex`.
    /// Resolution to columns vs. path properties happens in the planner.
    CompoundRef(Vec<RefPart>),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — uncorrelated subquery membership.
    /// The engine folds it into an `InList` of literals before planning.
    InSubquery {
        expr: Box<Expr>,
        select: Box<Select>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// Function call, including aggregates. `COUNT(*)` sets `star`.
    Function {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
}

/// A source location (1-based line and column of a token). `0:0` means
/// "unknown" — synthesized expressions carry no span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    /// The "no location" span used for synthesized AST nodes.
    pub fn none() -> Self {
        Span::default()
    }

    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One segment of a reference chain: a name plus an optional `[...]` index.
///
/// Equality deliberately ignores `span`: the planner dedups aggregate calls
/// and matches GROUP BY / post-aggregation expressions structurally, and two
/// occurrences of the same reference at different source positions must
/// compare equal.
#[derive(Debug, Clone)]
pub struct RefPart {
    pub name: String,
    pub index: Option<IndexRange>,
    /// Source position of the segment's identifier token (for plan-time
    /// diagnostics). Not part of structural equality.
    pub span: Span,
}

impl PartialEq for RefPart {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.index == other.index
    }
}

impl RefPart {
    pub fn plain(name: impl Into<String>) -> Self {
        RefPart {
            name: name.into(),
            index: None,
            span: Span::none(),
        }
    }
}

/// The `[i]`, `[i..j]`, `[i..*]` index forms of path element references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange {
    pub start: u64,
    pub end: IndexEnd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexEnd {
    /// `[i]` — exactly position `start`.
    At,
    /// `[i..j]` — inclusive range end.
    Bounded(u64),
    /// `[i..*]` — from `start` to the end of the path.
    Star,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    /// True for comparison operators (produce booleans).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl Expr {
    /// Convenience: build `left AND right`, treating `None` as absent.
    pub fn and_opt(left: Option<Expr>, right: Option<Expr>) -> Option<Expr> {
        match (left, right) {
            (Some(l), Some(r)) => Some(Expr::Binary {
                left: Box::new(l),
                op: BinaryOp::And,
                right: Box::new(r),
            }),
            (Some(l), None) => Some(l),
            (None, r) => r,
        }
    }

    /// The leftmost known source span inside this expression (the position
    /// reported by plan-time diagnostics). `None` when the expression holds
    /// no reference — literals carry no location.
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::CompoundRef(parts) => {
                parts.iter().map(|p| p.span).find(|s| s.is_known())
            }
            Expr::Unary { expr, .. } => expr.span(),
            Expr::Binary { left, right, .. } => left.span().or_else(|| right.span()),
            Expr::InList { expr, list, .. } => expr
                .span()
                .or_else(|| list.iter().find_map(|e| e.span())),
            Expr::InSubquery { expr, .. } => expr.span(),
            Expr::Between {
                expr, low, high, ..
            } => expr
                .span()
                .or_else(|| low.span())
                .or_else(|| high.span()),
            Expr::Function { args, .. } => args.iter().find_map(|e| e.span()),
            Expr::Literal(_) | Expr::Parameter(_) => None,
        }
    }

    /// Render a span suffix like " at 1:23" (empty when no span is known) —
    /// the uniform tail of plan-time diagnostics.
    pub fn span_suffix(&self) -> String {
        match self.span() {
            Some(s) => format!(" at {s}"),
            None => String::new(),
        }
    }

    /// Split a predicate into its top-level AND-ed conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let a = Expr::Literal(Value::Boolean(true));
        let b = Expr::Literal(Value::Boolean(false));
        let c = Expr::Literal(Value::Null);
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(a.clone()),
                op: BinaryOp::And,
                right: Box::new(b.clone()),
            }),
            op: BinaryOp::And,
            right: Box::new(c.clone()),
        };
        assert_eq!(e.conjuncts(), vec![a, b, c]);
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let a = Expr::Literal(Value::Boolean(true));
        let e = Expr::Binary {
            left: Box::new(a.clone()),
            op: BinaryOp::Or,
            right: Box::new(a.clone()),
        };
        assert_eq!(e.clone().conjuncts(), vec![e]);
    }

    #[test]
    fn and_opt_combinations() {
        let t = Expr::Literal(Value::Boolean(true));
        assert_eq!(Expr::and_opt(None, None), None);
        assert_eq!(Expr::and_opt(Some(t.clone()), None), Some(t.clone()));
        let both = Expr::and_opt(Some(t.clone()), Some(t.clone())).unwrap();
        assert_eq!(both.conjuncts().len(), 2);
    }

    #[test]
    fn from_item_binding() {
        let f = FromItem::Table {
            name: "users".into(),
            alias: Some("u".into()),
        };
        assert_eq!(f.binding(), "u");
        let f = FromItem::GraphPaths {
            graph: "sn".into(),
            alias: None,
            hint: None,
        };
        assert_eq!(f.binding(), "sn");
    }
}
