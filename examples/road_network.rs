//! Road-network routing: top-k shortest paths with the SHORTESTPATH hint
//! (paper Listing 6) and constrained routing that avoids toll roads — the
//! paper's motivating example from §1.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use grfusion_baselines::GrFusionSystem;
use grfusion_datasets::{random_connected_pairs, roads, Adjacency};

fn main() {
    let ds = roads(2_500, 11);
    println!(
        "generated road network: {} intersections, {} road segments",
        ds.vertex_count(),
        ds.edge_count()
    );
    let sys = GrFusionSystem::load(&ds).expect("load");
    let db = sys.db();

    // Pick a connected pair to route between.
    let adj = Adjacency::build(&ds);
    let (src, dst) = random_connected_pairs(&ds, &adj, 10, 1, 3)[0];
    println!("routing from intersection {src} to {dst}\n");

    // Top-3 shortest routes by distance (paper Listing 6 with TOP k).
    let rs = db
        .execute(&format!(
            "SELECT TOP 3 PS.PathString, PS.Cost, PS.Length \
             FROM g.Paths PS HINT(SHORTESTPATH(weight)) \
             WHERE PS.StartVertex.Id = {src} AND PS.EndVertex.Id = {dst}"
        ))
        .unwrap();
    println!("top-3 shortest routes:");
    println!("{}", rs.to_table_string());

    // The §1 motivating query: shortest route avoiding toll roads
    // (highway segments here), expressed as a relational predicate pushed
    // into the traversal.
    let rs = db
        .execute(&format!(
            "SELECT PS.PathString, PS.Cost \
             FROM g.Paths PS HINT(SHORTESTPATH(weight)) \
             WHERE PS.StartVertex.Id = {src} AND PS.EndVertex.Id = {dst} \
             AND PS.Edges[0..*].roadtype = 'local' LIMIT 1"
        ))
        .unwrap();
    println!("\nshortest local-roads-only route:");
    println!("{}", rs.to_table_string());

    // Compare with an unweighted hop-count route via the reachability path.
    let rs = db
        .execute(&format!(
            "SELECT PS.Length FROM g.Paths PS \
             WHERE PS.StartVertex.Id = {src} AND PS.EndVertex.Id = {dst} \
             AND PS.Length <= 20 LIMIT 1"
        ))
        .unwrap();
    println!("\nfewest-hops route length:");
    println!("{}", rs.to_table_string());
}
