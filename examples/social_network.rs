//! Social-network analytics over a generated DBLP-style co-authorship
//! graph: friends-of-friends, triangle counting (paper Listing 4), and
//! group-by analytics mixing graph and relational operators.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use grfusion_baselines::GrFusionSystem;
use grfusion_datasets::coauthor;

fn main() {
    let ds = coauthor(3_000, 7);
    println!(
        "generated co-authorship network: {} authors, {} co-author edges",
        ds.vertex_count(),
        ds.edge_count()
    );
    let sys = GrFusionSystem::load(&ds).expect("load");
    let db = sys.db();

    // Friends-of-friends of author 0, through collaborations since 2005.
    let rs = db
        .execute(
            "SELECT PS.EndVertex.name FROM g.Paths PS \
             WHERE PS.StartVertex.Id = 0 AND PS.Length = 2 \
             AND PS.Edges[0..*].since >= 2005 LIMIT 10",
        )
        .unwrap();
    println!("\nco-authors-of-co-authors of Author 0 (since 2005), first 10:");
    println!("{}", rs.to_table_string());

    // Triangle counting (paper Listing 4): closed 3-paths / 6.
    let rs = db
        .execute(
            "SELECT COUNT(P) FROM g.Paths P WHERE P.Length = 3 \
             AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
        )
        .unwrap();
    let closed = rs.scalar().unwrap().as_integer().unwrap();
    println!(
        "\nclosed 3-paths: {closed}  →  {} distinct collaboration triangles",
        closed / 6
    );

    // Mixing models: how many 1-hop collaborators does each of the five
    // most-connected authors have, via the VERTEXES construct?
    let rs = db
        .execute(
            "SELECT VS.name, VS.fanOut FROM g.Vertexes VS \
             ORDER BY VS.fanOut DESC, VS.id LIMIT 5",
        )
        .unwrap();
    println!("\ntop-5 most collaborative authors:");
    println!("{}", rs.to_table_string());

    // Relational aggregation over the edge source joined with a traversal:
    // collaboration counts per year for author 0's 2-hop neighbourhood.
    let rs = db
        .execute(
            "SELECT E.since, COUNT(*) FROM g.Edges E \
             GROUP BY E.since ORDER BY E.since LIMIT 8",
        )
        .unwrap();
    println!("\ncollaborations per year (first 8 years):");
    println!("{}", rs.to_table_string());
}
