//! Online graph updates (paper §3.3): DML on a graph view's relational
//! sources transactionally maintains the materialized topology — inserts
//! add vertexes/edges, deletes remove them (with referential-integrity
//! checks), attribute updates flow through tuple pointers, and rollbacks
//! restore both the tables and the topology.
//!
//! ```text
//! cargo run --example graph_updates
//! ```

use grfusion::Database;

fn stats(db: &Database) -> String {
    let s = db.graph_stats("net").unwrap();
    format!("{} vertexes / {} edges", s.vertex_count, s.edge_count)
}

fn main() {
    let db = Database::new();
    db.execute("CREATE TABLE nodes (id INTEGER PRIMARY KEY, label VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE links (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO nodes VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
    db.execute("INSERT INTO links VALUES (10, 1, 2, 1.0), (11, 2, 3, 1.0)")
        .unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW net \
         VERTEXES(ID = id, label = label) FROM nodes \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM links",
    )
    .unwrap();
    println!("materialized: {}", stats(&db));

    // Insert-through: new rows appear in the topology immediately.
    db.execute("INSERT INTO nodes VALUES (4, 'four')").unwrap();
    db.execute("INSERT INTO links VALUES (12, 3, 4, 2.0)").unwrap();
    println!("after inserts: {}", stats(&db));

    // Referential integrity: an edge to a missing vertex aborts the
    // statement, leaving storage AND topology untouched.
    match db.execute("INSERT INTO links VALUES (13, 4, 99, 1.0)") {
        Err(e) => println!("dangling edge rejected: {e}"),
        Ok(_) => unreachable!(),
    }
    println!("unchanged: {}", stats(&db));

    // A vertex with incident edges refuses deletion.
    match db.execute("DELETE FROM nodes WHERE id = 2") {
        Err(e) => println!("vertex delete rejected: {e}"),
        Ok(_) => unreachable!(),
    }

    // Attribute updates flow through tuple pointers — no topology rebuild.
    db.execute("UPDATE nodes SET label = 'TWO' WHERE id = 2").unwrap();
    let rs = db
        .execute(
            "SELECT PS.EndVertex.label FROM net.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 1",
        )
        .unwrap();
    println!("traversal sees updated attribute: {}", rs.rows[0][0]);

    // Transactions: topology changes roll back with the tables.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO nodes VALUES (5, 'five')").unwrap();
    db.execute("INSERT INTO links VALUES (14, 4, 5, 1.0)").unwrap();
    println!("inside txn: {}", stats(&db));
    db.execute("ROLLBACK").unwrap();
    println!("after rollback: {}", stats(&db));

    // Identifier updates rename topology nodes and cascade into the edge
    // source (§3.3.1).
    db.execute("UPDATE nodes SET id = 100 WHERE id = 1").unwrap();
    let rs = db
        .execute("SELECT a FROM links WHERE id = 10")
        .unwrap();
    println!("edge 10 now starts at node {}", rs.rows[0][0]);
    let rs = db
        .execute(
            "SELECT PS.PathString FROM net.Paths PS \
             WHERE PS.StartVertex.Id = 100 AND PS.EndVertex.Id = 4 LIMIT 1",
        )
        .unwrap();
    println!("path from renamed node: {}", rs.rows[0][0]);
}
