//! Quickstart: the paper's running example end-to-end.
//!
//! Creates the Figure 3 social network as plain relational tables, turns
//! it into a graph view with the Listing 1 DDL, and runs cross-model
//! queries against it — including the Listing 2 friends-of-friends query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use grfusion::Database;

fn show(db: &Database, title: &str, sql: &str) {
    println!("\n-- {title}\n   {sql}");
    match db.execute(sql) {
        Ok(rs) => println!("{}", rs.to_table_string()),
        Err(e) => println!("error: {e}"),
    }
}

fn main() {
    let db = Database::new();

    // The relational side: ordinary tables (paper Figure 3).
    db.execute(
        "CREATE TABLE Users (uId INTEGER PRIMARY KEY, fName VARCHAR, lName VARCHAR, \
         dob VARCHAR, job VARCHAR)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE Relationships (relId INTEGER PRIMARY KEY, uId1 INTEGER, uId2 INTEGER, \
         startDate INTEGER, isRelative BOOLEAN)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Users VALUES \
         (1, 'Edy', 'Smith', '1989-05-12', 'Lawyer'), \
         (2, 'Ann', 'Jones', '1991-02-03', 'Doctor'), \
         (3, 'Max', 'Parker', '1985-11-30', 'Lawyer'), \
         (4, 'Sue', 'Patrick', '1970-07-07', 'Engineer'), \
         (5, 'Bob', 'Bill', '1999-12-24', 'Chef')",
    )
    .unwrap();
    db.execute(
        "INSERT INTO Relationships VALUES \
         (10, 1, 2, 2001, true), (11, 2, 3, 1999, false), \
         (12, 3, 4, 2005, false), (13, 1, 4, 2010, true), (14, 4, 5, 2021, false)",
    )
    .unwrap();

    // The graph side: a materialized graph view (paper Listing 1).
    db.execute(
        "CREATE UNDIRECTED GRAPH VIEW SocialNetwork \
         VERTEXES(ID = uId, lstName = lName, birthdate = dob, job = job) FROM Users \
         EDGES(ID = relId, FROM = uId1, TO = uId2, sdate = startDate, relative = isRelative) \
         FROM Relationships",
    )
    .unwrap();
    let stats = db.graph_stats("SocialNetwork").unwrap();
    println!(
        "materialized graph view: {} vertexes, {} edges, avg fan-out {:.2}, ~{} bytes topology",
        stats.vertex_count, stats.edge_count, stats.avg_fan_out, stats.memory_bytes
    );

    // Pure relational query — the engine is still a full RDBMS.
    show(
        &db,
        "relational: lawyers",
        "SELECT fName, lName FROM Users WHERE job = 'Lawyer' ORDER BY uId",
    );

    // Vertex scan with graph-only properties (paper Listing 5).
    show(
        &db,
        "vertex scan with fan-out",
        "SELECT VS.lstName, VS.fanOut FROM SocialNetwork.Vertexes VS ORDER BY VS.id",
    );

    // Cross-model: friends-of-friends of lawyers (paper Listing 2).
    show(
        &db,
        "friends-of-friends of lawyers over recent relationships",
        "SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
         WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uId AND PS.Length = 2 \
         AND PS.Edges[0..*].sdate > 2000",
    );

    // Reachability with a path rendered as a string (paper Listing 3 shape).
    show(
        &db,
        "is Smith connected to Bill?",
        "SELECT PS.PathString, PS.Length FROM Users A, Users B, SocialNetwork.Paths PS \
         WHERE A.lName = 'Smith' AND B.lName = 'Bill' \
         AND PS.StartVertex.Id = A.uId AND PS.EndVertex.Id = B.uId LIMIT 1",
    );

    // The cross-model plan, straight from the optimizer.
    println!("\n-- EXPLAIN of the friends-of-friends query");
    println!(
        "{}",
        db.explain(
            "SELECT PS.EndVertex.lstName FROM Users U, SocialNetwork.Paths PS \
             WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uId AND PS.Length = 2"
        )
        .unwrap()
    );
}
