//! Protein-interaction reachability (paper Listing 3): does Protein X
//! interact, directly or transitively, with Protein Y through covalent or
//! stable interactions only?
//!
//! ```text
//! cargo run --release --example protein_reachability
//! ```

use grfusion_baselines::GrFusionSystem;
use grfusion_datasets::{protein, random_connected_pairs, Adjacency};

fn main() {
    let ds = protein(3_000, 13);
    println!(
        "generated protein-interaction network: {} proteins, {} interactions",
        ds.vertex_count(),
        ds.edge_count()
    );
    let sys = GrFusionSystem::load(&ds).expect("load");
    let db = sys.db();

    let adj = Adjacency::build(&ds);
    let pairs = random_connected_pairs(&ds, &adj, 5, 5, 17);

    for (x, y) in pairs {
        // Paper Listing 3, with the vertex table joined in by name — the
        // relational access path selecting the traversal's endpoints.
        let rs = db
            .execute(&format!(
                "SELECT PS.PathString FROM v_src Pr1, v_src Pr2, g.Paths PS \
                 WHERE Pr1.name = 'Protein {x}' AND Pr2.name = 'Protein {y}' \
                 AND PS.StartVertex.Id = Pr1.id AND PS.EndVertex.Id = Pr2.id \
                 AND PS.Edges[0..*].itype IN ('covalent', 'stable') LIMIT 1",
            ))
            .unwrap();
        match rs.rows.first() {
            Some(row) => println!(
                "Protein {x} ⇝ Protein {y} via covalent/stable interactions: {}",
                row[0]
            ),
            None => println!(
                "Protein {x} ⇝ Protein {y}: not connected through covalent/stable interactions"
            ),
        }
    }

    // Interaction-type census through the EDGES construct.
    let rs = db
        .execute(
            "SELECT E.itype, COUNT(*) FROM g.Edges E GROUP BY E.itype ORDER BY E.itype",
        )
        .unwrap();
    println!("\ninteractions by type:\n{}", rs.to_table_string());
}
